"""Training-step simulation driver.

:func:`simulate_training_step` executes one mini-batch step of a given
algorithm on a given accelerator model and returns a
:class:`TrainingReport`: per-phase latency / traffic / MAC aggregates
from which every performance figure of the paper (5, 13, 14, 15, 16 and
the PPU traffic claim) is derived.

Modeling notes
--------------
* GEMMs follow the Figure 6 schedules from :mod:`repro.training.plan`.
* Element-wise layers (ReLU, pooling, normalization math, residual
  adds, softmax) run on the vector unit with full DRAM round trips — a
  conservative, fusion-free model that is negligible next to the GEMM
  and post-processing phases.
* Per-example gradients of *vector-path* parameters (LayerNorm /
  BatchNorm affine vectors, embeddings) are materialized densely to
  DRAM and normed by the vector unit on every design point — the PPU
  only intercepts gradients drained from the GEMM engine.
* With a PPU on an output-stationary drain, per-example gradient norms
  fuse into the weight-gradient GEMMs (``fuse_norm``), and under
  DP-SGD(R) the gradients themselves are never written off-chip — the
  source of the paper's "99% reduction in off-chip data movement during
  gradient post-processing".
* Multi-chip execution (:func:`simulate_sharded_training_step`) is
  data-parallel: the global mini-batch splits evenly across the chips
  of a :class:`repro.arch.cluster.Cluster`, every per-example phase
  runs locally on a shard, one communication phase charges the
  norm + clipped-gradient-sum allreduce, and the optimizer (reduce /
  noise / update) runs replicated — every chip holds the full model,
  generates identical noise from a shared seed, and applies the same
  update, so no parameter broadcast is needed.  Passing a ``Cluster``
  to :func:`simulate_training_step` dispatches to the sharded path.
* Communication/compute overlap (``overlap=True``, the default) models
  the standard DDP bucketed-allreduce schedule: when the interconnect
  buckets the gradient payload (``InterconnectConfig.bucket_bytes``),
  a bucket allreduces while backward compute is still producing later
  buckets.  The ``Comm`` phase then charges only the *exposed* time,
  ``max(first-bucket latency, comm_total - overlappable backward
  cycles)``, with the hidden remainder recorded in
  ``OpRun.hidden_cycles`` so reports can show both.  The overlappable
  window is the gradient-*producing* backward phase
  (:func:`overlappable_backward_cycles`) scaled by ``(B-1)/B`` for
  ``B`` buckets — the first bucket must exist before any wire time can
  hide.  With one monolithic bucket nothing overlaps (the sum is only
  ready when backward ends), so ``overlap`` changes nothing unless
  bucketing is on; the tiny per-example norm allreduce (which feeds
  the shared privacy accountant) is charged serially — conservative,
  and negligible at ``B * 4`` bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import TYPE_CHECKING, Sequence

from repro.arch.accelerator import Accelerator, OpRun
from repro.arch.cluster import Cluster, ParallelPlan
from repro.training.algorithms import Algorithm
from repro.training.phases import CLUSTER_PHASE_ORDER, PHASE_ORDER, Phase
from repro.training.plan import phase_gemms
from repro.workloads.gemms import Gemm
from repro.workloads.layer import Embedding
from repro.workloads.model import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import TraceRecorder

#: Storage width of gradients / norms (FP32).
GRAD_BYTES = 4
#: Storage width of activations (BF16).
ACT_BYTES = 2


@dataclass(frozen=True)
class TrainingReport:
    """Per-phase execution aggregates of one training step."""

    network: str
    family: str
    algorithm: Algorithm
    accelerator: str
    with_ppu: bool
    batch: int
    frequency_hz: float
    phases: dict[Phase, OpRun]

    @cached_property
    def total(self) -> OpRun:
        """Aggregate over all phases."""
        total = OpRun.zero()
        for run in self.phases.values():
            total = total + run
        return total

    @property
    def total_cycles(self) -> int:
        return self.total.cycles

    @property
    def total_seconds(self) -> float:
        return self.total.cycles / self.frequency_hz

    def phase_cycles(self, phase: Phase) -> int:
        return self.phases.get(phase, OpRun.zero()).cycles

    def phase_seconds(self, phase: Phase) -> float:
        return self.phase_cycles(phase) / self.frequency_hz

    @property
    def backprop_fraction(self) -> float:
        """Fraction of the step spent in backpropagation (Section III-B)."""
        fwd = self.phase_cycles(Phase.FWD)
        if self.total_cycles == 0:
            return 0.0
        return 1.0 - fwd / self.total_cycles

    @property
    def postprocessing_dram_bytes(self) -> int:
        """Off-chip traffic of per-example gradient post-processing.

        Covers the per-example gradient spill (the write side of the
        example-gradient phase) plus the norm-derivation and clipping
        traffic — the quantity the PPU shrinks by ~99% (Section I).
        The reduce/noise/update phase is excluded: it operates on
        per-batch state that exists under every algorithm.
        """
        spill = self.phases.get(Phase.BWD_EXAMPLE_GRAD,
                                OpRun.zero()).dram_write_bytes
        post = sum(
            self.phases.get(p, OpRun.zero()).dram_bytes
            for p in (Phase.BWD_GRAD_NORM, Phase.BWD_GRAD_CLIP)
        )
        return spill + post

    def breakdown(self) -> dict[str, float]:
        """Phase -> seconds mapping in figure order."""
        return {str(p): self.phase_seconds(p) for p in PHASE_ORDER}


@dataclass(frozen=True)
class ClusterTrainingReport:
    """One data-parallel sharded training step on a multi-chip cluster.

    ``shard`` is the local execution of one chip's shard (all chips are
    identical, so one report represents every shard); ``comm`` is the
    cross-chip collective stage.  The step latency is
    ``shard latency + comm latency``, where ``comm.cycles`` is the
    *exposed* (critical-path) communication: with overlap enabled and a
    bucketed interconnect, the portion of the gradient allreduce hidden
    behind backward compute lands in ``comm.hidden_cycles`` instead.
    Serial execution (``overlap=False``, or a single monolithic bucket)
    exposes everything and ``hidden_cycles`` is zero.

    A 3D :class:`~repro.arch.cluster.ParallelPlan` (``pp > 1`` or
    ``tp > 1``) additionally records the pipeline schedule:
    ``pipeline_cycles`` is the microbatched makespan of the bottleneck
    replica (it replaces ``shard.total.cycles`` in the critical path),
    ``bubble_cycles`` the fill/drain idle time inside it, and
    ``stage_cycles`` / ``stage_bounds`` the per-stage split of the
    shard's work.  Pure-DP reports keep the zero defaults and are
    structurally identical to the pre-3D model.
    """

    cluster: str
    n_chips: int
    topology: str
    global_batch: int
    shard: TrainingReport
    comm: OpRun
    overlap: bool = True
    plan: "ParallelPlan | None" = None
    pipeline_cycles: int = 0
    bubble_cycles: int = 0
    microbatches: int = 1
    stage_cycles: "tuple[int, ...]" = ()
    stage_bounds: "tuple[int, ...]" = ()

    @property
    def local_batch(self) -> int:
        """Per-replica shard size (``global_batch / dp``)."""
        if self.plan is not None:
            return self.global_batch // self.plan.dp
        return self.global_batch // self.n_chips

    @property
    def frequency_hz(self) -> float:
        return self.shard.frequency_hz

    @cached_property
    def phases(self) -> dict[Phase, OpRun]:
        """Shard phases plus the communication phase."""
        merged = dict(self.shard.phases)
        merged[Phase.COMM] = self.comm
        return merged

    @cached_property
    def total(self) -> OpRun:
        """Critical-path aggregate of one chip (local phases + comm).

        With a pipelined plan the compute portion is the microbatched
        makespan — the shard's work counters (MACs, DRAM traffic) are
        kept, only its latency is replaced.
        """
        if self.pipeline_cycles:
            return replace(self.shard.total,
                           cycles=self.pipeline_cycles) + self.comm
        return self.shard.total + self.comm

    @property
    def total_cycles(self) -> int:
        return self.total.cycles

    @property
    def total_seconds(self) -> float:
        return self.total.cycles / self.frequency_hz

    @property
    def compute_seconds(self) -> float:
        """Local (per-shard / pipelined) portion of the step."""
        if self.pipeline_cycles:
            return self.pipeline_cycles / self.frequency_hz
        return self.shard.total_seconds

    @property
    def comm_seconds(self) -> float:
        """Exposed (critical-path) collective portion of the step."""
        return self.comm.cycles / self.frequency_hz

    @property
    def comm_exposed_seconds(self) -> float:
        """Alias of :attr:`comm_seconds` — the un-hidden collective time."""
        return self.comm_seconds

    @property
    def comm_total_seconds(self) -> float:
        """Total wire time of the collectives, exposed plus hidden."""
        return self.comm.busy_cycles / self.frequency_hz

    @property
    def comm_hidden_seconds(self) -> float:
        """Collective time overlapped behind backward compute."""
        return self.comm.hidden_cycles / self.frequency_hz

    @property
    def comm_fraction(self) -> float:
        """Fraction of the step spent in the (exposed) allreduce stage."""
        if self.total_cycles == 0:
            return 0.0
        return self.comm.cycles / self.total_cycles

    @property
    def cluster_dram_bytes(self) -> int:
        """Off-chip traffic summed over all chips."""
        return self.shard.total.dram_bytes * self.n_chips

    @property
    def cluster_link_bytes(self) -> int:
        """Interconnect wire traffic summed over all chips."""
        return self.comm.link_bytes * self.n_chips

    def phase_cycles(self, phase: Phase) -> int:
        return self.phases.get(phase, OpRun.zero()).cycles

    def phase_seconds(self, phase: Phase) -> float:
        return self.phase_cycles(phase) / self.frequency_hz

    def breakdown(self) -> dict[str, float]:
        """Phase -> seconds mapping, communication last."""
        return {str(p): self.phase_seconds(p) for p in CLUSTER_PHASE_ORDER}


def _vector_path_elems(network: Network, batch: int) -> int:
    """Activation elements of non-GEMM layers for a mini-batch."""
    return batch * sum(
        layer.out_elems for layer in network.layers if not layer.has_weights
    )


def _embedding_elems(network: Network, batch: int) -> int:
    """Activation elements produced by embedding lookups."""
    return batch * sum(
        layer.out_elems for layer in network.layers
        if isinstance(layer, Embedding)
    )


def _elementwise(accel: Accelerator, elems: int,
                 ops_per_elem: float = 1.0) -> OpRun:
    """Vector-unit pass over ``elems`` values with a DRAM round trip."""
    if elems <= 0:
        return OpRun.zero()
    return accel.run_vector(
        elems,
        ops_per_elem=ops_per_elem,
        dram_read_bytes=elems * ACT_BYTES,
        dram_write_bytes=elems * ACT_BYTES,
    )


@dataclass(frozen=True)
class GemmOp:
    """One GEMM of a training step, with its execution options.

    The declarative form of a :meth:`Accelerator.run_gemm` call —
    shared by the scalar driver (which executes it directly) and the
    batched evaluator (:mod:`repro.training.batch`, which prices whole
    grids of them in a few NumPy passes).
    """

    phase: Phase
    gemm: Gemm
    write_output: bool = True
    fuse_norm: bool = False


def _tp_shard_gemm(gemm: Gemm, tp: int) -> Gemm:
    """Megatron-style column shard: the output dimension splits ``tp`` ways.

    ``ceil`` keeps ragged shards conservative (every rank runs the
    widest shard); ``tp=1`` callers skip this entirely so the pure-DP
    schedule is the untouched original.
    """
    return replace(gemm, n=-(-gemm.n // tp))


def step_gemm_ops(
    network: Network,
    algorithm: Algorithm,
    accelerator: Accelerator,
    batch: int,
    tp: int = 1,
) -> list[GemmOp]:
    """The GEMM operations of one training step, in schedule order.

    Encodes the per-phase execution options of the Figure 6 schedules:
    per-example weight-gradient GEMMs spill only when the algorithm
    stores the gradients or the dataflow cannot forward them
    (``write_output``), and norm derivation fuses into the drain when
    the design has a matched PPU (``fuse_norm``) — see
    :func:`simulate_training_step` for the modeling rationale.

    ``tp > 1`` prices one tensor-parallel rank: every GEMM's output
    dimension is column-sharded ``tp`` ways (the activation allgathers
    stitching shards back together are charged by the cluster's
    communication phase, not here).
    """
    plan = phase_gemms(network, algorithm, batch)
    if tp > 1:
        plan = {phase: [_tp_shard_gemm(g, tp) for g in gemms]
                for phase, gemms in plan.items()}
    ops = [GemmOp(Phase.FWD, g) for g in plan[Phase.FWD]]
    ops += [GemmOp(Phase.BWD_ACT_1, g) for g in plan[Phase.BWD_ACT_1]]
    if algorithm.is_private:
        # Plain DP-SGD must keep the gradients for clipping.  Under
        # DP-SGD(R) the gradients exist only for norm derivation:
        # an output-stationary drain forwards them on the fly (to the
        # PPU, or failing that the vector unit) and never writes them
        # off-chip; only the WS baseline must spill them to DRAM
        # (Figure 10).
        os_drain = accelerator.engine.dataflow == "output_stationary"
        write_grads = algorithm.stores_example_gradients or not os_drain
        fuse = accelerator.can_fuse_norm
        ops += [GemmOp(Phase.BWD_EXAMPLE_GRAD, g,
                       write_output=write_grads, fuse_norm=fuse)
                for g in plan[Phase.BWD_EXAMPLE_GRAD]]
    if algorithm is Algorithm.DP_SGD_R:
        ops += [GemmOp(Phase.BWD_ACT_2, g) for g in plan[Phase.BWD_ACT_2]]
    if algorithm in (Algorithm.DP_SGD_R, Algorithm.SGD):
        ops += [GemmOp(Phase.BWD_BATCH_GRAD, g)
                for g in plan[Phase.BWD_BATCH_GRAD]]
    return ops


def step_vector_runs(
    network: Network,
    algorithm: Algorithm,
    accelerator: Accelerator,
    batch: int,
    tp: int = 1,
) -> dict[Phase, OpRun]:
    """Non-GEMM (vector / element-wise) work of one step, per phase.

    Executes the vector-unit kernels of every phase the step touches
    and returns them keyed by phase — phases whose work is GEMM-only
    carry a zero :class:`OpRun` so the mapping's key set is exactly the
    step's phase set.  Adding each phase's :func:`step_gemm_ops` GEMMs
    on top reconstitutes the full report (OpRun addition commutes).

    ``tp > 1`` prices one tensor-parallel rank: parameter-proportional
    kernels (per-example gradients, norms, clip, reduce/noise/update)
    operate on the rank's ``ceil(params / tp)`` shard, while
    activation-proportional element-wise work stays replicated (every
    rank holds the full, allgathered activations).
    """
    fuse = accelerator.can_fuse_norm
    gemm_params = network.gemm_params
    vector_params = network.vector_grad_params
    all_params = network.params
    if tp > 1:
        gemm_params = -(-gemm_params // tp)
        vector_params = -(-vector_params // tp)
        all_params = -(-all_params // tp)
    act_elems = _vector_path_elems(network, batch)
    phases: dict[Phase, OpRun] = {}

    phases[Phase.FWD] = _elementwise(accelerator, act_elems)
    phases[Phase.BWD_ACT_1] = _elementwise(accelerator, act_elems)

    if algorithm.is_private:
        os_drain = accelerator.engine.dataflow == "output_stationary"
        example = OpRun.zero()
        if vector_params:
            # Dense materialization of embedding / norm-affine
            # per-example gradients (vector path on every design).
            example = example + accelerator.run_vector(
                batch * vector_params,
                dram_write_bytes=batch * vector_params * GRAD_BYTES,
            )
        phases[Phase.BWD_EXAMPLE_GRAD] = example

        # -- per-example gradient norms ---------------------------------------
        norm = OpRun.zero()
        if fuse:
            # PPU path: tree outputs only need the final per-example
            # accumulation — norm derivation rode along with the drain.
            norm = norm + accelerator.run_vector(
                batch * len(network.weight_layers), reduction=True)
        elif os_drain:
            # No PPU, but the fine-grained OS drain forwards each output
            # tile to the vector unit, which square-reduces it while the
            # GEMM engine stalls (Section IV-C): compute-serialized, no
            # off-chip spill.
            norm = norm + accelerator.run_vector(
                batch * gemm_params, ops_per_elem=2.0, reduction=True)
        else:
            # WS: fetch the DRAM-spilled gradients back and square-reduce
            # them on the vector unit — the memory-bound stage of
            # Section III-C.
            norm = norm + accelerator.run_vector(
                batch * gemm_params,
                ops_per_elem=2.0,
                dram_read_bytes=batch * gemm_params * GRAD_BYTES,
                reduction=True,
            )
        if vector_params:
            norm = norm + accelerator.run_vector(
                batch * vector_params,
                ops_per_elem=2.0,
                dram_read_bytes=batch * vector_params * GRAD_BYTES,
                reduction=True,
            )
        phases[Phase.BWD_GRAD_NORM] = norm

    if algorithm is Algorithm.DP_SGD:
        # -- clip, then reduce + noise ----------------------------------------
        phases[Phase.BWD_GRAD_CLIP] = accelerator.run_vector(
            batch * all_params,
            dram_read_bytes=batch * all_params * GRAD_BYTES,
            dram_write_bytes=batch * all_params * GRAD_BYTES,
        )
        reduce = accelerator.run_vector(
            batch * all_params,
            dram_read_bytes=batch * all_params * GRAD_BYTES,
            dram_write_bytes=all_params * GRAD_BYTES,
            reduction=True,
        )
        phases[Phase.BWD_REDUCE_NOISE] = reduce + _noise_and_update(
            accelerator, all_params)

    elif algorithm is Algorithm.DP_SGD_R:
        # Reweighting the loss gradients by the clip scales is a tiny
        # per-example scale riding with the second backward pass.
        phases[Phase.BWD_ACT_2] = (_elementwise(accelerator, act_elems)
                                   + accelerator.run_vector(batch))
        phases[Phase.BWD_BATCH_GRAD] = OpRun.zero()
        phases[Phase.BWD_REDUCE_NOISE] = _noise_and_update(
            accelerator, all_params)

    else:  # non-private SGD
        phases[Phase.BWD_BATCH_GRAD] = OpRun.zero()
        phases[Phase.BWD_REDUCE_NOISE] = _update_only(accelerator, all_params)

    return phases


def _simulate_chip_step(
    network: Network,
    algorithm: Algorithm,
    accelerator: Accelerator,
    batch: int,
    collect_ops: bool,
    tp: int = 1,
) -> "tuple[TrainingReport, list[tuple[GemmOp, OpRun]] | None]":
    """Execute one single-chip step; optionally keep per-GEMM records.

    The op log only exists when a trace recorder asked for it
    (``collect_ops``) — the default path allocates nothing and runs
    the exact pre-observability sequence.
    """
    op_log: list[tuple[GemmOp, OpRun]] | None = \
        [] if collect_ops else None
    phases = step_vector_runs(network, algorithm, accelerator, batch, tp)
    for op in step_gemm_ops(network, algorithm, accelerator, batch, tp):
        run = accelerator.run_gemm(
            op.gemm, write_output=op.write_output, fuse_norm=op.fuse_norm)
        phases[op.phase] = phases[op.phase] + run
        if op_log is not None:
            op_log.append((op, run))
    report = TrainingReport(
        network=network.name,
        family=network.family,
        algorithm=algorithm,
        accelerator=accelerator.name,
        with_ppu=accelerator.ppu is not None,
        batch=batch,
        frequency_hz=accelerator.frequency_hz,
        phases=phases,
    )
    return report, op_log


def simulate_training_step(
    network: Network,
    algorithm: Algorithm,
    accelerator: "Accelerator | Cluster",
    batch: int,
    *,
    plan: "ParallelPlan | None" = None,
    overlap: bool = True,
    recorder: "TraceRecorder | None" = None,
) -> "TrainingReport | ClusterTrainingReport":
    """Simulate one training step and return the per-phase report.

    Passing a :class:`~repro.arch.cluster.Cluster` dispatches to
    :func:`simulate_sharded_training_step` with ``batch`` as the global
    mini-batch, returning a :class:`ClusterTrainingReport`; ``plan``
    and ``overlap`` only matter on that path (single-chip steps have no
    collectives).

    The step decomposes into :func:`step_gemm_ops` (the GEMM schedule)
    plus :func:`step_vector_runs` (everything the vector unit does);
    :func:`repro.training.batch.training_step_batch` evaluates the same
    decomposition over whole config grids in NumPy and is pinned
    cycle-identical to this driver.

    ``recorder`` (a :class:`repro.obs.trace.TraceRecorder`) lays the
    step's per-phase and per-GEMM spans on the recorder's simulated
    timeline; ``None`` (default) records nothing and changes nothing.
    """
    if isinstance(accelerator, Cluster):
        return simulate_sharded_training_step(
            network, algorithm, accelerator, batch, plan=plan,
            overlap=overlap, recorder=recorder)
    if plan is not None and plan.n_chips != 1:
        raise ValueError(
            f"plan {plan} needs a Cluster, not a single accelerator")
    report, op_log = _simulate_chip_step(
        network, algorithm, accelerator, batch, recorder is not None)
    if recorder is not None:
        from repro.obs.trace import add_training_step_spans

        assert op_log is not None
        add_training_step_spans(recorder, report, op_log)
    return report


def allreduce_payload_bytes(network: Network,
                            algorithm: Algorithm,
                            global_batch: int) -> list[int]:
    """Per-collective payloads of one sharded step, in bytes.

    Data-parallel DP-SGD needs at most two collectives:

    * the per-batch (clipped) gradient sum — ``params * GRAD_BYTES``
      for every algorithm, since each chip only holds its shard's
      partial sum;
    * per-example norm bookkeeping — ``global_batch * GRAD_BYTES``,
      private algorithms only.  Clipping itself is local (each norm
      belongs to one shard's example), but the clip-scale statistics
      feed the shared privacy accountant, so one scalar per example
      crosses chips.
    """
    payloads = [network.params * GRAD_BYTES]
    if algorithm.is_private:
        payloads.append(global_batch * GRAD_BYTES)
    return payloads


def overlappable_backward_cycles(report: TrainingReport) -> int:
    """Backward cycles the gradient allreduce may hide behind.

    The overlappable window is the phase that *produces* the per-batch
    gradient payload bucket by bucket: under DP-SGD the clipping pass
    (clip-and-accumulate finalizes the local sum for a parameter bucket
    once every example's slice of it has been scaled), under DP-SGD(R)
    and plain SGD the per-batch weight-gradient GEMMs (gradients
    materialize layer by layer).  Everything after the allreduce
    (reduce tail, noise, update) can never overlap and is excluded.
    """
    if report.algorithm is Algorithm.DP_SGD:
        return report.phase_cycles(Phase.BWD_GRAD_CLIP)
    return report.phase_cycles(Phase.BWD_BATCH_GRAD)


def simulate_sharded_training_step(
    network: Network,
    algorithm: Algorithm,
    cluster: Cluster,
    global_batch: int,
    *,
    plan: "ParallelPlan | None" = None,
    overlap: bool = True,
    recorder: "TraceRecorder | None" = None,
) -> ClusterTrainingReport:
    """Simulate one (possibly 3D-)parallel training step on a cluster.

    ``plan=None`` (default) is pure data parallelism over all ``N``
    chips; any explicit :class:`~repro.arch.cluster.ParallelPlan` with
    ``pp == tp == 1`` routes through the identical code path, so both
    spellings are bitwise-equal.  Plans with ``pp > 1`` or ``tp > 1``
    take the 3D path: the declarative schedule splits into pipeline
    stages (GPipe-style microbatching with closed-form bubble
    accounting) and tensor-parallel GEMM shards whose activation
    allgathers ride the fabric's intra-node link — see
    :mod:`repro.training.parallel`.

    The global mini-batch must divide evenly by the data-parallel
    degree.  Each replica runs the full phase sequence on its
    ``global_batch / dp`` shard (the per-batch reduce/noise/update tail
    is replicated, so it appears once — all chips execute it in
    lock-step on identical data).  The communication phase charges one
    allreduce per payload of :func:`allreduce_payload_bytes`; fractional
    collective seconds accumulate across the step and quantize to
    cluster cycles *once*, so no per-collective (or, with bucketing,
    per-bucket) rounding surcharge creeps in.  On an ``N=1`` cluster
    every collective is free and the shard report is bitwise-identical
    to :func:`simulate_training_step` on the bare chip.

    With ``overlap=True`` (default) and a bucketed interconnect, the
    gradient-sum allreduce overlaps the backward compute that produces
    later buckets: the ``Comm`` phase charges
    ``max(first-bucket latency, comm_total - overlappable backward
    seconds)`` for that collective, and the hidden remainder is
    recorded in ``comm.hidden_cycles``.  ``overlap=False`` — or a
    single monolithic bucket, whose payload only exists once backward
    has finished — charges the full serial time, identical to the
    pre-overlap model.

    ``recorder`` traces the shard's phase/GEMM spans plus the
    collective stage, with any overlapped wire time rendered as an
    async ``hidden`` slice (see :mod:`repro.obs.trace`).
    """
    n = cluster.n_chips
    if plan is not None:
        plan.validate(n)
        if not plan.is_pure_dp:
            return _simulate_3d_step(
                network, algorithm, cluster, global_batch, plan,
                overlap=overlap, recorder=recorder)
    if global_batch <= 0:
        raise ValueError(f"global batch must be positive, got {global_batch}")
    if global_batch % n:
        raise ValueError(
            f"global batch {global_batch} does not divide evenly across "
            f"{n} chips")
    shard, op_log = _simulate_chip_step(
        network, algorithm, cluster.chip, global_batch // n,
        recorder is not None)
    payloads = allreduce_payload_bytes(network, algorithm, global_batch)
    total_s = sum(cluster.allreduce_seconds(p) for p in payloads)
    wire_bytes = sum(cluster.link_bytes(p) for p in payloads)
    exposed_s = total_s
    if overlap and n > 1:
        # Only the gradient-sum allreduce (the first payload) overlaps;
        # the norm-bookkeeping collective stays serial.
        grad_payload = payloads[0]
        grad_s = cluster.allreduce_seconds(grad_payload)
        buckets = cluster.interconnect.n_buckets(grad_payload)
        window_s = (overlappable_backward_cycles(shard)
                    / cluster.frequency_hz) * (buckets - 1) / buckets
        exposed_grad_s = max(
            cluster.interconnect.first_bucket_seconds(grad_payload, n),
            grad_s - window_s)
        exposed_s = exposed_grad_s + (total_s - grad_s)
    total_cycles = cluster.cycles(total_s)
    exposed_cycles = min(cluster.cycles(exposed_s), total_cycles)
    comm = OpRun(
        cycles=exposed_cycles,
        hidden_cycles=total_cycles - exposed_cycles,
        link_bytes=wire_bytes,
    )
    report = ClusterTrainingReport(
        cluster=cluster.name,
        n_chips=n,
        topology=cluster.topology,
        global_batch=global_batch,
        shard=shard,
        comm=comm,
        overlap=overlap,
        plan=plan,
    )
    if recorder is not None:
        from repro.obs.trace import add_cluster_step_spans

        assert op_log is not None
        add_cluster_step_spans(recorder, report, op_log)
    return report


def _simulate_3d_step(
    network: Network,
    algorithm: Algorithm,
    cluster: Cluster,
    global_batch: int,
    plan: ParallelPlan,
    *,
    overlap: bool = True,
    recorder: "TraceRecorder | None" = None,
) -> ClusterTrainingReport:
    """One 3D-parallel (DP x PP x TP) training step.

    The replica's whole-step schedule is simulated once per TP rank
    (``_simulate_chip_step`` with ``tp``-sharded GEMMs), then split
    into pipeline stages by :func:`repro.training.parallel.
    build_pipeline_schedule`; the communication phase layers the
    data-parallel allreduces (with the existing overlap/bucketing
    model, the window now being the bottleneck stage's share of the
    gradient-producing phase) on top of the serial tensor-parallel
    allgather and pipeline fill/drain charges.
    """
    from repro.training.parallel import build_pipeline_schedule

    dp = plan.dp
    if global_batch <= 0:
        raise ValueError(f"global batch must be positive, got {global_batch}")
    if global_batch % dp:
        raise ValueError(
            f"global batch {global_batch} does not divide evenly across "
            f"{dp} data-parallel replicas of plan {plan}")
    local_batch = global_batch // dp
    shard, op_log = _simulate_chip_step(
        network, algorithm, cluster.chip, local_batch, True, tp=plan.tp)
    assert op_log is not None
    sched = build_pipeline_schedule(
        network, algorithm, [op for op, _ in op_log],
        [run.cycles for _, run in op_log],
        {phase: run.cycles for phase, run in shard.phases.items()},
        local_batch, plan)

    ic = cluster.interconnect
    payloads = [sched.dp_payload_bytes]
    if algorithm.is_private:
        payloads.append(global_batch * GRAD_BYTES)
    total_s = sum(ic.allreduce_seconds(p, dp) for p in payloads)
    wire_bytes = sum(ic.link_bytes_per_chip(p, dp) for p in payloads)
    exposed_s = total_s
    if overlap and dp > 1:
        grad_payload = payloads[0]
        grad_s = ic.allreduce_seconds(grad_payload, dp)
        buckets = ic.n_buckets(grad_payload)
        window_s = (sched.overlappable_cycles
                    / cluster.frequency_hz) * (buckets - 1) / buckets
        exposed_grad_s = max(
            ic.first_bucket_seconds(grad_payload, dp),
            grad_s - window_s)
        exposed_s = exposed_grad_s + (total_s - grad_s)
    # TP allgathers serialize with compute (each GEMM waits on its
    # gathered input); the pipeline boundary charge is the fill/drain
    # exposure.  Both land on the critical path unconditionally.
    serial_s = (
        ic.tp_collective_seconds(
            sched.tp_payload_bytes, sched.tp_collectives, plan.tp)
        + ic.pp_boundary_seconds(sched.boundary_micro_bytes, sched.cuts))
    wire_bytes += ic.tp_link_bytes_per_chip(
        sched.tp_payload_bytes, sched.tp_collectives, plan.tp)
    wire_bytes += ic.pp_link_bytes_per_chip(
        sched.boundary_micro_bytes, sched.cuts, sched.microbatches, plan.pp)
    total_cycles = cluster.cycles(total_s + serial_s)
    exposed_cycles = min(cluster.cycles(exposed_s + serial_s), total_cycles)
    comm = OpRun(
        cycles=exposed_cycles,
        hidden_cycles=total_cycles - exposed_cycles,
        link_bytes=wire_bytes,
    )
    report = ClusterTrainingReport(
        cluster=cluster.name,
        n_chips=cluster.n_chips,
        topology=cluster.topology,
        global_batch=global_batch,
        shard=shard,
        comm=comm,
        overlap=overlap,
        plan=plan,
        pipeline_cycles=sched.pipeline_cycles,
        bubble_cycles=sched.bubble_cycles,
        microbatches=sched.microbatches,
        stage_cycles=sched.stage_cycles,
        stage_bounds=sched.stage_bounds,
    )
    if recorder is not None:
        from repro.obs.trace import add_cluster_step_spans

        add_cluster_step_spans(recorder, report, op_log)
    return report


def _noise_and_update(accel: Accelerator, params: int) -> OpRun:
    """Gaussian noise generation/addition plus the SGD weight update."""
    noise = accel.run_vector(
        params,
        ops_per_elem=3.0,  # RNG draw, scale, add
        dram_read_bytes=params * GRAD_BYTES,
        dram_write_bytes=params * GRAD_BYTES,
    )
    return noise + _update_only(accel, params)


def _update_only(accel: Accelerator, params: int) -> OpRun:
    """Weight update: read gradient + master weight, write new weight."""
    return accel.run_vector(
        params,
        ops_per_elem=2.0,
        dram_read_bytes=2 * params * GRAD_BYTES,
        dram_write_bytes=params * GRAD_BYTES,
    )


# -- checkpoint/restart cost model -------------------------------------------

#: Default checkpoint storage write bandwidth: a burst buffer / local
#: SSD tier at 2 GiB/s per cluster.
DEFAULT_STORAGE_BYTES_PER_S = 2.0 * 2**30


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpoint cadence and storage path of one training job.

    ``interval_steps`` is the number of optimizer steps between
    checkpoint writes; ``None`` asks the consumer to derive a
    Young/Daly-optimal cadence from the failure rate
    (:func:`young_daly_interval_s`).  ``storage_bytes_per_s`` is the
    sequential write bandwidth the checkpoint state
    (:func:`repro.training.memory.checkpoint_bytes`) drains through.
    """

    interval_steps: int | None = None
    storage_bytes_per_s: float = DEFAULT_STORAGE_BYTES_PER_S

    def __post_init__(self) -> None:
        if self.interval_steps is not None and self.interval_steps < 1:
            raise ValueError(
                f"interval_steps must be >= 1 or None, got "
                f"{self.interval_steps}")
        if self.storage_bytes_per_s <= 0:
            raise ValueError(
                f"storage_bytes_per_s must be positive, got "
                f"{self.storage_bytes_per_s}")


def checkpoint_write_seconds(
    network: Network,
    config: CheckpointConfig = CheckpointConfig(),
) -> float:
    """Seconds one checkpoint write stalls training.

    State bytes come from the memory model
    (:func:`repro.training.memory.checkpoint_bytes`); the write is
    synchronous — steps do not overlap the drain — which keeps the
    model conservative and the closed forms below exact.
    """
    from repro.training.memory import checkpoint_bytes

    return checkpoint_bytes(network) / config.storage_bytes_per_s


def checkpointed_step_seconds(step_s: float, write_s: float,
                              interval_steps: int) -> float:
    """Step latency with the checkpoint write amortized per interval."""
    if interval_steps < 1:
        raise ValueError(
            f"interval_steps must be >= 1, got {interval_steps}")
    if step_s <= 0 or write_s < 0:
        raise ValueError(
            f"need step_s > 0 and write_s >= 0, got {step_s}, {write_s}")
    return step_s + write_s / interval_steps


def young_daly_interval_s(write_s: float, mtbf_s: float) -> float:
    """Young/Daly-optimal seconds of work between checkpoints.

    The classic first-order optimum ``sqrt(2 * write_s * mtbf_s)``
    (Young 1974; Daly 2006) for memoryless failures when checkpoint
    cost is small against the MTBF.  Property tests pin it against a
    sweep of :func:`expected_completion_seconds`.
    """
    if write_s <= 0 or mtbf_s <= 0:
        raise ValueError(
            f"write_s and mtbf_s must be positive, got {write_s}, "
            f"{mtbf_s}")
    return math.sqrt(2.0 * write_s * mtbf_s)


def _expected_segment_seconds(u_s: float, mtbf_s: float,
                              restart_s: float) -> float:
    """Expected wall time to finish ``u_s`` of uninterruptible work.

    Memoryless failures at rate ``1 / mtbf_s``; each failure loses the
    whole segment and pays ``restart_s`` of downtime before retrying.
    The renewal argument gives the exact closed form
    ``(mtbf + restart) * (e^(u / mtbf) - 1)``.
    """
    return (mtbf_s + restart_s) * math.expm1(u_s / mtbf_s)


def expected_completion_seconds(
    work_s: float,
    *,
    mtbf_s: float,
    interval_s: float,
    write_s: float = 0.0,
    restart_s: float = 0.0,
) -> float:
    """Expected wall time to finish ``work_s`` of checkpointed work.

    The job writes a checkpoint after every ``interval_s`` of
    progress (costing ``write_s``, during which a failure also loses
    the segment), failures arrive memorylessly with mean ``mtbf_s``,
    and each failure rolls back to the last checkpoint and pays
    ``restart_s`` of restart/repair downtime.  Exact for this model —
    :func:`simulate_checkpointed_run` is the discrete-event twin the
    property tests average against.
    """
    if work_s < 0:
        raise ValueError(f"work_s must be >= 0, got {work_s}")
    if mtbf_s <= 0 or interval_s <= 0:
        raise ValueError(
            f"mtbf_s and interval_s must be positive, got {mtbf_s}, "
            f"{interval_s}")
    if write_s < 0 or restart_s < 0:
        raise ValueError(
            f"write_s and restart_s must be >= 0, got {write_s}, "
            f"{restart_s}")
    n_full = int(work_s // interval_s)
    remainder_s = work_s - n_full * interval_s
    total = n_full * _expected_segment_seconds(
        interval_s + write_s, mtbf_s, restart_s)
    if remainder_s > 0:
        # The tail segment never checkpoints: the job is done.
        total += _expected_segment_seconds(remainder_s, mtbf_s, restart_s)
    return total


def simulate_checkpointed_run(
    work_s: float,
    failure_gaps_s: "Sequence[float]",
    *,
    interval_s: float,
    write_s: float = 0.0,
    restart_s: float = 0.0,
) -> float:
    """Discrete-event twin of :func:`expected_completion_seconds`.

    Replays one job against an explicit sequence of inter-failure
    times (so the caller owns the randomness — e.g. seeded draws from
    :class:`repro.serve.faults.FaultModel`): each segment of
    ``interval_s`` work plus its ``write_s`` checkpoint must run
    uninterrupted; a failure inside it wastes the elapsed fraction,
    pays ``restart_s``, and retries the segment from the checkpoint.
    Raises if the gap sequence is exhausted before the job finishes.
    """
    if work_s < 0:
        raise ValueError(f"work_s must be >= 0, got {work_s}")
    if interval_s <= 0:
        raise ValueError(
            f"interval_s must be positive, got {interval_s}")
    gaps = iter(failure_gaps_s)
    clock_s = 0.0
    until_failure_s = next(gaps)
    done_s = 0.0
    while done_s < work_s:
        segment_s = min(interval_s, work_s - done_s)
        need_s = segment_s + (write_s if segment_s == interval_s else 0.0)
        while until_failure_s < need_s:
            # Lost the segment: pay the elapsed fraction + restart.
            clock_s += until_failure_s + restart_s
            until_failure_s = next(gaps)
        clock_s += need_s
        until_failure_s -= need_s
        done_s += segment_s
    return clock_s


def stage_utilization(accel: Accelerator, gemms: list[Gemm]) -> float:
    """Aggregate FLOPS utilization of a GEMM list (Figures 7 / 15)."""
    if not gemms:
        return 0.0
    cycles = 0
    macs = 0
    for gemm in gemms:
        stats = accel.engine.gemm_stats(gemm)
        cycles += stats.compute_cycles
        macs += stats.macs
    if cycles == 0:
        return 0.0
    return macs / (cycles * accel.config.peak_macs_per_cycle)
