"""GEMM schedules per training phase, and the 3D placement planner.

:func:`phase_gemms` lowers a network + algorithm into the ordered GEMM
lists of each :class:`~repro.training.phases.Phase`.  Consumers include
the accelerator simulation driver (:mod:`repro.training.simulate`) and
the GPU comparison (Figure 17), which prices the same GEMM lists on the
GPU model.

:func:`plan_placement` searches the DP x PP x TP factorizations of a
chip count: every candidate is simulated closed-form on the requested
fabric, plans whose per-stage :func:`~repro.training.parallel.
stage_memory_breakdown` exceeds the HBM budget are refused, and the
fastest feasible plan wins (ties prefer fewer pipeline stages, then
fewer tensor shards — the least invasive parallelism).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.training.algorithms import Algorithm
from repro.training.memory import (
    DEFAULT_CAPACITY_BYTES, DEFAULT_RESERVED_FRACTION,
)
from repro.training.phases import Phase
from repro.workloads.gemms import Gemm, GemmKind
from repro.workloads.model import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.arch.cluster import ParallelPlan
    from repro.arch.interconnect import Fabric


def phase_gemms(network: Network, algorithm: Algorithm,
                batch: int) -> dict[Phase, list[Gemm]]:
    """GEMMs of each training phase for one mini-batch step.

    Non-GEMM work (element-wise ops, norm derivation, clipping,
    reduction, noise) is attached by the simulation driver; this mapping
    covers only the matrix multiplications of Figure 6.
    """
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")

    fwd = network.gemms(GemmKind.FORWARD, batch)
    act = network.gemms(GemmKind.ACT_GRAD, batch)
    plan: dict[Phase, list[Gemm]] = {phase: [] for phase in Phase}
    plan[Phase.FWD] = fwd
    plan[Phase.BWD_ACT_1] = act

    if algorithm is Algorithm.SGD:
        plan[Phase.BWD_BATCH_GRAD] = network.gemms(GemmKind.WGRAD_BATCH, batch)
    elif algorithm is Algorithm.DP_SGD:
        plan[Phase.BWD_EXAMPLE_GRAD] = network.gemms(
            GemmKind.WGRAD_EXAMPLE, batch)
    elif algorithm is Algorithm.DP_SGD_R:
        plan[Phase.BWD_EXAMPLE_GRAD] = network.gemms(
            GemmKind.WGRAD_EXAMPLE, batch)
        plan[Phase.BWD_ACT_2] = list(act)
        plan[Phase.BWD_BATCH_GRAD] = network.gemms(GemmKind.WGRAD_BATCH, batch)
    else:  # pragma: no cover - exhaustive enum
        raise AssertionError(f"unhandled algorithm {algorithm}")
    return plan


def bottleneck_gemms(network: Network, algorithm: Algorithm,
                     batch: int) -> list[Gemm]:
    """The backpropagation GEMMs — the paper's bottleneck stages.

    Used by the GPU comparison (Figure 17), which evaluates "those key
    GEMM operations that constitute DP-SGD's backpropagation bottleneck
    stages" (Section VI-D).
    """
    plan = phase_gemms(network, algorithm, batch)
    gemms: list[Gemm] = []
    for phase in (Phase.BWD_ACT_1, Phase.BWD_EXAMPLE_GRAD,
                  Phase.BWD_ACT_2, Phase.BWD_BATCH_GRAD):
        gemms.extend(plan[phase])
    return gemms


# -- placement planning ------------------------------------------------------

@dataclass(frozen=True)
class PlanCandidate:
    """One evaluated DP x PP x TP factorization."""

    plan: "ParallelPlan"
    feasible: bool
    #: Why the plan was refused ("" when feasible).
    reason: str
    #: Modeled step latency (``inf`` when refused before simulation).
    step_seconds: float
    #: Largest per-stage HBM footprint across the grid, bytes.
    peak_stage_bytes: int


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of a placement search over one workload."""

    network: str
    algorithm: Algorithm
    n_chips: int
    global_batch: int
    candidates: tuple[PlanCandidate, ...]
    #: HBM budget each stage must fit under, bytes.
    budget_bytes: int

    @property
    def best(self) -> "ParallelPlan | None":
        """The fastest feasible plan (``None`` if nothing fits)."""
        feasible = [c for c in self.candidates if c.feasible]
        if not feasible:
            return None
        return min(feasible, key=lambda c: (
            c.step_seconds, c.plan.pp, c.plan.tp)).plan


def _factorizations(n_chips: int) -> "list[ParallelPlan]":
    """Every ``dp * pp * tp == n_chips`` grid, in deterministic order."""
    from repro.arch.cluster import ParallelPlan

    plans = []
    for dp in range(1, n_chips + 1):
        if n_chips % dp:
            continue
        rest = n_chips // dp
        for pp in range(1, rest + 1):
            if rest % pp:
                continue
            plans.append(ParallelPlan(dp=dp, pp=pp, tp=rest // pp))
    # Pure DP first, then increasingly model-parallel grids.
    plans.sort(key=lambda p: (p.pp, p.tp, -p.dp))
    return plans


def plan_placement(
    network: Network,
    algorithm: Algorithm,
    n_chips: int,
    global_batch: int,
    *,
    kind: str = "diva",
    capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
    reserved_fraction: float = DEFAULT_RESERVED_FRACTION,
    topology: str = "ring",
    bucket_bytes: int | None = None,
    chips_per_node: int = 1,
    fabric: "Fabric | str | None" = None,
    overlap: bool = True,
) -> PlacementResult:
    """Search DP x PP x TP placements of one workload on ``n_chips``.

    Every factorization of ``n_chips`` is either refused with a reason
    (batch not divisible by ``dp``, more stages than layers, a stage's
    memory footprint over the HBM budget) or simulated closed-form;
    :attr:`PlacementResult.best` is the fastest feasible plan.  The
    memory refusal uses the same per-stage partition the simulator
    runs, so a plan the planner accepts is exactly the plan the
    cluster executes.
    """
    from repro.arch.interconnect import InterconnectConfig, fabric_named
    from repro.core.diva import build_cluster
    from repro.training.parallel import stage_memory_breakdown
    from repro.training.simulate import simulate_sharded_training_step

    if n_chips < 1:
        raise ValueError(f"n_chips must be >= 1, got {n_chips}")
    if global_batch < 1:
        raise ValueError(
            f"global batch must be positive, got {global_batch}")
    if isinstance(fabric, str):
        fabric = fabric_named(fabric)
    cluster = build_cluster(
        kind=kind, n_chips=n_chips,
        interconnect=InterconnectConfig(
            topology=topology, bucket_bytes=bucket_bytes,
            chips_per_node=chips_per_node, fabric=fabric))
    budget = int(capacity_bytes * (1.0 - reserved_fraction))
    n_layers = len(network.layers)
    candidates: list[PlanCandidate] = []
    for plan in _factorizations(n_chips):
        if global_batch % plan.dp:
            candidates.append(PlanCandidate(
                plan, False,
                f"global batch {global_batch} not divisible by "
                f"dp={plan.dp}", math.inf, 0))
            continue
        if plan.pp > n_layers:
            candidates.append(PlanCandidate(
                plan, False,
                f"pp={plan.pp} exceeds the {n_layers}-layer network",
                math.inf, 0))
            continue
        if (topology == "hierarchical" and plan.dp > 1
                and plan.dp % chips_per_node):
            candidates.append(PlanCandidate(
                plan, False,
                f"dp={plan.dp} does not group into hierarchical nodes "
                f"of {chips_per_node}", math.inf, 0))
            continue
        report = simulate_sharded_training_step(
            network, algorithm, cluster, global_batch, plan=plan,
            overlap=overlap)
        bounds = report.stage_bounds or (0, n_layers)
        peak = max(
            b.total for b in stage_memory_breakdown(
                network, algorithm, report.local_batch, bounds, plan.tp))
        if peak > budget:
            candidates.append(PlanCandidate(
                plan, False,
                f"stage memory {peak / 2**30:.1f} GiB exceeds the "
                f"{budget / 2**30:.1f} GiB budget",
                report.total_seconds, peak))
            continue
        candidates.append(PlanCandidate(
            plan, True, "", report.total_seconds, peak))
    return PlacementResult(
        network=network.name,
        algorithm=algorithm,
        n_chips=n_chips,
        global_batch=global_batch,
        candidates=tuple(candidates),
        budget_bytes=budget,
    )
