"""GEMM schedules per training phase and algorithm.

:func:`phase_gemms` lowers a network + algorithm into the ordered GEMM
lists of each :class:`~repro.training.phases.Phase`.  Consumers include
the accelerator simulation driver (:mod:`repro.training.simulate`) and
the GPU comparison (Figure 17), which prices the same GEMM lists on the
GPU model.
"""

from __future__ import annotations

from repro.training.algorithms import Algorithm
from repro.training.phases import Phase
from repro.workloads.gemms import Gemm, GemmKind
from repro.workloads.model import Network


def phase_gemms(network: Network, algorithm: Algorithm,
                batch: int) -> dict[Phase, list[Gemm]]:
    """GEMMs of each training phase for one mini-batch step.

    Non-GEMM work (element-wise ops, norm derivation, clipping,
    reduction, noise) is attached by the simulation driver; this mapping
    covers only the matrix multiplications of Figure 6.
    """
    if batch <= 0:
        raise ValueError(f"batch must be positive, got {batch}")

    fwd = network.gemms(GemmKind.FORWARD, batch)
    act = network.gemms(GemmKind.ACT_GRAD, batch)
    plan: dict[Phase, list[Gemm]] = {phase: [] for phase in Phase}
    plan[Phase.FWD] = fwd
    plan[Phase.BWD_ACT_1] = act

    if algorithm is Algorithm.SGD:
        plan[Phase.BWD_BATCH_GRAD] = network.gemms(GemmKind.WGRAD_BATCH, batch)
    elif algorithm is Algorithm.DP_SGD:
        plan[Phase.BWD_EXAMPLE_GRAD] = network.gemms(
            GemmKind.WGRAD_EXAMPLE, batch)
    elif algorithm is Algorithm.DP_SGD_R:
        plan[Phase.BWD_EXAMPLE_GRAD] = network.gemms(
            GemmKind.WGRAD_EXAMPLE, batch)
        plan[Phase.BWD_ACT_2] = list(act)
        plan[Phase.BWD_BATCH_GRAD] = network.gemms(GemmKind.WGRAD_BATCH, batch)
    else:  # pragma: no cover - exhaustive enum
        raise AssertionError(f"unhandled algorithm {algorithm}")
    return plan


def bottleneck_gemms(network: Network, algorithm: Algorithm,
                     batch: int) -> list[Gemm]:
    """The backpropagation GEMMs — the paper's bottleneck stages.

    Used by the GPU comparison (Figure 17), which evaluates "those key
    GEMM operations that constitute DP-SGD's backpropagation bottleneck
    stages" (Section VI-D).
    """
    plan = phase_gemms(network, algorithm, batch)
    gemms: list[Gemm] = []
    for phase in (Phase.BWD_ACT_1, Phase.BWD_EXAMPLE_GRAD,
                  Phase.BWD_ACT_2, Phase.BWD_BATCH_GRAD):
        gemms.extend(plan[phase])
    return gemms
