"""BF16 datapath emulation (Table I: BF16 multiply, FP32 accumulate).

Every engine in the paper multiplies BF16 operands and accumulates in
FP32.  This module emulates that numeric behaviour in NumPy so the
functional DP-SGD substrate can quantify the precision impact of the
hardware datapath (bfloat16 keeps FP32's exponent range but only 8
mantissa bits).
"""

from __future__ import annotations

import numpy as np


def to_bfloat16(x: np.ndarray) -> np.ndarray:
    """Round an array to bfloat16 precision (kept in float32 storage).

    Uses round-to-nearest-even on the upper 16 bits of the IEEE-754
    single-precision encoding — the standard bfloat16 conversion.
    """
    x32 = np.ascontiguousarray(x, dtype=np.float32)
    bits = x32.view(np.uint32)
    # Round-to-nearest-even: add 0x7FFF plus the LSB of the kept part.
    rounded = (bits + 0x7FFF + ((bits >> 16) & 1)) & np.uint32(0xFFFF0000)
    out = rounded.astype(np.uint32).view(np.float32).copy()
    # NaN payloads can be squashed to infinity by the rounding add;
    # restore NaNs explicitly.
    nan_mask = np.isnan(x32)
    if nan_mask.any():
        out[nan_mask] = np.nan
    return out.reshape(x32.shape)


def bf16_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix multiplication with BF16 operands, FP32 accumulation.

    Mirrors the paper's PE datapath: operands are quantized to bfloat16
    before the multiply; products and sums are kept in float32.
    """
    a16 = to_bfloat16(a).astype(np.float32)
    b16 = to_bfloat16(b).astype(np.float32)
    return a16 @ b16


def bf16_relative_error(x: np.ndarray) -> np.ndarray:
    """Element-wise relative quantization error of the BF16 rounding."""
    x = np.asarray(x, dtype=np.float64)
    quantized = to_bfloat16(x).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        err = np.abs(quantized - x) / np.abs(x)
    return np.where(x == 0.0, 0.0, err)
