"""Functional (cycle-by-cycle) array simulators for model validation.

These move real data through register arrays one clock at a time and
are used by the test suite to validate both the numerics and the cycle
formulas of the analytic engines in :mod:`repro.arch` / :mod:`repro.core`.
"""

from repro.functional.adder_tree import (
    AdderTreeResult,
    PipelinedAdderTree,
    simulate_adder_tree,
)
from repro.functional.outer_product import (
    OuterProductResult,
    simulate_outer_product,
)
from repro.functional.precision import (
    bf16_matmul,
    bf16_relative_error,
    to_bfloat16,
)
from repro.functional.systolic_os import OsResult, os_wavefront_cycles, simulate_os
from repro.functional.systolic_ws import (
    FunctionalResult,
    simulate_ws,
    ws_stream_cycles,
)
from repro.functional.tiled import TiledResult, tiled_matmul

__all__ = [
    "simulate_ws",
    "ws_stream_cycles",
    "FunctionalResult",
    "simulate_os",
    "os_wavefront_cycles",
    "OsResult",
    "simulate_outer_product",
    "OuterProductResult",
    "PipelinedAdderTree",
    "simulate_adder_tree",
    "AdderTreeResult",
    "tiled_matmul",
    "TiledResult",
    "to_bfloat16",
    "bf16_matmul",
    "bf16_relative_error",
]
