"""Cycle-by-cycle functional simulation of an output-stationary array.

Figure 3(b): LHS rows stream in from the left edge and RHS columns from
the top edge, both skewed one cycle per row/column, so PE(i, j) sees
``lhs[i, t]`` and ``rhs[t, j]`` simultaneously and accumulates its
output element locally.  After the wavefront passes, results drain at
``drain_rows_per_cycle`` rows per clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class OsResult:
    """Output of a functional OS simulation."""

    output: np.ndarray
    wavefront_cycles: int
    drain_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.wavefront_cycles + self.drain_cycles


def simulate_os(lhs: np.ndarray, rhs: np.ndarray, height: int, width: int,
                drain_rows_per_cycle: int = 8) -> OsResult:
    """Multiply ``lhs @ rhs`` on an (height x width) OS systolic array.

    Requires a single output tile: ``m <= height`` and ``n <= width``.
    """
    lhs = np.asarray(lhs, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    m, k = lhs.shape
    k2, n = rhs.shape
    if k != k2:
        raise ValueError(f"shape mismatch: {lhs.shape} @ {rhs.shape}")
    if m > height or n > width:
        raise ValueError(
            f"output tile ({m}x{n}) exceeds array ({height}x{width})"
        )

    h_regs = np.zeros((height, width))  # LHS values moving right
    v_regs = np.zeros((height, width))  # RHS values moving down
    acc = np.zeros((height, width))
    # The final MAC of PE(m-1, n-1) happens once the last skewed
    # operands reach it: cycle (k-1) + (m-1) + (n-1); +1 cycles because
    # we count completed cycles.
    wavefront = k + m + n - 2
    for cycle in range(wavefront):
        h_prev = h_regs.copy()
        v_prev = v_regs.copy()
        h_regs[:, 1:] = h_prev[:, :-1]
        v_regs[1:, :] = v_prev[:-1, :]
        for i in range(m):
            t = cycle - i
            h_regs[i, 0] = lhs[i, t] if 0 <= t < k else 0.0
        for j in range(n):
            t = cycle - j
            v_regs[0, j] = rhs[t, j] if 0 <= t < k else 0.0
        acc += h_regs * v_regs
    drain = math.ceil(m / drain_rows_per_cycle)
    return OsResult(output=acc[:m, :n].copy(), wavefront_cycles=wavefront,
                    drain_cycles=drain)


def os_wavefront_cycles(m: int, k: int, n: int) -> int:
    """Closed form of the wavefront time: ``k + m + n - 2``.

    The analytic engine uses ``k + m + n - 1`` (the paper's Figure 3(b)
    expression), one conservative cycle above the register-level sim.
    """
    return k + m + n - 2
