"""Cycle-by-cycle functional simulation of one pipelined adder tree.

Figure 11: a ``log2(width)``-level binary adder tree reduces one
``width``-element row per clock in a fully pipelined fashion.  A new
row may enter every cycle; its scalar sum emerges ``levels`` cycles
later.  The PPU instantiates ``R`` such trees, one per drained output
row (Figure 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class AdderTreeResult:
    """Output of a pipelined adder-tree simulation."""

    sums: np.ndarray
    #: Cycle at which each input row's sum emerged (0-indexed from the
    #: cycle its row was injected).
    latency_cycles: int
    total_cycles: int


class PipelinedAdderTree:
    """A ``width``-input pipelined binary adder tree."""

    def __init__(self, width: int) -> None:
        if width < 2:
            raise ValueError("adder tree needs at least 2 inputs")
        self.width = width
        self.levels = math.ceil(math.log2(width))
        padded = 1 << self.levels
        # pipeline[level] holds the partial sums currently at that level.
        self._pipeline: list[np.ndarray | None] = [None] * self.levels
        self._padded = padded

    def step(self, row: np.ndarray | None) -> float | None:
        """Advance one clock; inject ``row`` (or a bubble) at level 0.

        Returns the scalar that exits the final level this cycle, or
        ``None`` if a bubble emerges.
        """
        out = self._pipeline[-1]
        result = float(out[0]) if out is not None else None
        # Shift every level forward, pairing-and-adding as we go.
        for level in range(self.levels - 1, 0, -1):
            below = self._pipeline[level - 1]
            if below is None:
                self._pipeline[level] = None
            else:
                self._pipeline[level] = below[0::2] + below[1::2]
        if row is None:
            self._pipeline[0] = None
        else:
            row = np.asarray(row, dtype=np.float64)
            if row.shape != (self.width,):
                raise ValueError(
                    f"expected a row of width {self.width}, got {row.shape}"
                )
            padded = np.zeros(self._padded)
            padded[: self.width] = row
            self._pipeline[0] = padded[0::2] + padded[1::2]
        return result


def simulate_adder_tree(rows: np.ndarray) -> AdderTreeResult:
    """Reduce each row of ``rows`` through one pipelined adder tree."""
    rows = np.asarray(rows, dtype=np.float64)
    if rows.ndim != 2:
        raise ValueError("expected a 2D array of rows")
    count, width = rows.shape
    tree = PipelinedAdderTree(width)
    sums: list[float] = []
    cycle = 0
    for i in range(count):
        out = tree.step(rows[i])
        if out is not None:
            sums.append(out)
        cycle += 1
    # Flush the pipeline with bubbles.
    while len(sums) < count:
        out = tree.step(None)
        if out is not None:
            sums.append(out)
        cycle += 1
    return AdderTreeResult(
        sums=np.array(sums),
        latency_cycles=tree.levels,
        total_cycles=cycle,
    )
