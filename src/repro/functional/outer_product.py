"""Cycle-by-cycle functional simulation of DiVa's outer-product engine.

Figure 9(b): each clock, one LHS column (length m) and one RHS row
(length n) are broadcast over row/column buses; every PE multiplies its
pair and accumulates locally, so a full rank-1 update retires per
cycle.  After K cycles the accumulators drain at
``drain_rows_per_cycle`` rows per clock — optionally through the PPU,
which squares and sums each row on the fly (the fused gradient-norm
path of Section IV-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class OuterProductResult:
    """Output of a functional outer-product simulation."""

    output: np.ndarray
    compute_cycles: int
    drain_cycles: int
    #: Sum of squares of all drained outputs (the PPU norm tap);
    #: ``sqrt`` of this is the Frobenius/L2 norm of the output tile.
    norm_squared: float

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.drain_cycles


def simulate_outer_product(
    lhs: np.ndarray,
    rhs: np.ndarray,
    height: int,
    width: int,
    drain_rows_per_cycle: int = 8,
) -> OuterProductResult:
    """Multiply ``lhs @ rhs`` on an (height x width) outer-product array.

    Requires a single output tile: ``m <= height`` and ``n <= width``;
    K may be arbitrary (the dimension the dataflow is robust to).
    """
    lhs = np.asarray(lhs, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    m, k = lhs.shape
    k2, n = rhs.shape
    if k != k2:
        raise ValueError(f"shape mismatch: {lhs.shape} @ {rhs.shape}")
    if m > height or n > width:
        raise ValueError(
            f"output tile ({m}x{n}) exceeds array ({height}x{width})"
        )

    acc = np.zeros((height, width))
    for t in range(k):
        # All-to-all multiply of the broadcast column/row pair: one
        # rank-1 update per clock, regardless of K.
        acc[:m, :n] += np.outer(lhs[:, t], rhs[t, :])

    # Drain R rows per clock; the PPU taps the stream and accumulates
    # the sum of squares (norm derivation is overlapped, costing no
    # extra cycles beyond the pipeline flush modeled analytically).
    drain = math.ceil(m / drain_rows_per_cycle)
    norm_squared = 0.0
    for start in range(0, m, drain_rows_per_cycle):
        rows = acc[start:start + drain_rows_per_cycle, :n]
        norm_squared += float(np.sum(rows * rows))
    return OuterProductResult(
        output=acc[:m, :n].copy(),
        compute_cycles=k,
        drain_cycles=drain,
        norm_squared=norm_squared,
    )
