"""Tiled functional GEMM: compose single-tile array sims over big GEMMs.

The analytic engines (:mod:`repro.arch`) tile GEMMs onto the physical
array and sum per-tile cycle formulas; this module executes the *same
tiling* through the cycle-by-cycle functional simulators and assembles
the numeric result — validating that the tiling covers the operands
exactly and that partial-sum accumulation across K-chunks (WS) or
output placement across M/N-chunks (OS, outer-product) is correct.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.engine import chunk_sizes
from repro.functional.outer_product import simulate_outer_product
from repro.functional.systolic_os import simulate_os
from repro.functional.systolic_ws import simulate_ws

_DATAFLOWS = ("ws", "os", "outer_product")


@dataclass(frozen=True)
class TiledResult:
    """Assembled output and cycle total of a tiled functional GEMM."""

    output: np.ndarray
    total_cycles: int
    tiles: int


def tiled_matmul(a: np.ndarray, b: np.ndarray, height: int, width: int,
                 dataflow: str = "outer_product",
                 fill_rows_per_cycle: int = 8,
                 drain_rows_per_cycle: int = 8) -> TiledResult:
    """Multiply arbitrarily shaped ``a @ b`` on a small functional array.

    WS tiles (K -> rows, N -> columns) accumulate partial sums across
    K-chunks; OS/outer-product tiles (M -> rows, N -> columns) each own
    a disjoint output block.
    """
    if dataflow not in _DATAFLOWS:
        raise ValueError(f"unknown dataflow {dataflow!r}; "
                         f"choose from {_DATAFLOWS}")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    m, k = a.shape
    k2, n = b.shape
    if k != k2:
        raise ValueError(f"shape mismatch: {a.shape} @ {b.shape}")

    output = np.zeros((m, n))
    cycles = 0
    tiles = 0
    if dataflow == "ws":
        k_offsets = _offsets(chunk_sizes(k, height))
        n_offsets = _offsets(chunk_sizes(n, width))
        for k0, kt in k_offsets:
            for n0, nt in n_offsets:
                result = simulate_ws(
                    a[:, k0:k0 + kt], b[k0:k0 + kt, n0:n0 + nt],
                    height, width, fill_rows_per_cycle)
                output[:, n0:n0 + nt] += result.output
                cycles += result.total_cycles
                tiles += 1
    else:
        simulate = (simulate_os if dataflow == "os"
                    else simulate_outer_product)
        m_offsets = _offsets(chunk_sizes(m, height))
        n_offsets = _offsets(chunk_sizes(n, width))
        for m0, mt in m_offsets:
            for n0, nt in n_offsets:
                result = simulate(
                    a[m0:m0 + mt, :], b[:, n0:n0 + nt],
                    height, width, drain_rows_per_cycle)
                output[m0:m0 + mt, n0:n0 + nt] = result.output
                cycles += result.total_cycles
                tiles += 1
    return TiledResult(output=output, total_cycles=cycles, tiles=tiles)


def _offsets(chunks: list[int]) -> list[tuple[int, int]]:
    out = []
    position = 0
    for size in chunks:
        out.append((position, size))
        position += size
    return out
