"""Cycle-by-cycle functional simulation of a weight-stationary array.

Real data moves through register arrays one clock at a time, exactly as
in Figure 3(c): the RHS matrix is latched into the PEs (at
``fill_rows_per_cycle`` rows per clock), the LHS streams in from the
left edge with a one-cycle skew per row, partial sums flow downward and
outputs exit from the bottom of each column.  The simulator returns
both the numeric result (validated against NumPy in the tests) and the
exact cycle count (validating the analytic model of
:class:`repro.arch.systolic.WeightStationaryEngine`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FunctionalResult:
    """Output of a functional array simulation."""

    output: np.ndarray
    fill_cycles: int
    stream_cycles: int

    @property
    def total_cycles(self) -> int:
        return self.fill_cycles + self.stream_cycles


def simulate_ws(lhs: np.ndarray, rhs: np.ndarray, height: int, width: int,
                fill_rows_per_cycle: int = 8) -> FunctionalResult:
    """Multiply ``lhs @ rhs`` on an (height x width) WS systolic array.

    The operand shapes must fit a single tile: ``k <= height`` and
    ``n <= width`` (multi-tile GEMMs are the analytic model's job; this
    simulator validates the per-tile behaviour).
    """
    lhs = np.asarray(lhs, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    m, k = lhs.shape
    k2, n = rhs.shape
    if k != k2:
        raise ValueError(f"shape mismatch: {lhs.shape} @ {rhs.shape}")
    if k > height or n > width:
        raise ValueError(
            f"tile ({k}x{n}) exceeds array ({height}x{width}); "
            "tile the GEMM first"
        )

    # Phase 1: latch the RHS, fill_rows_per_cycle rows per clock.
    fill_cycles = math.ceil(k / fill_rows_per_cycle)
    weights = np.zeros((height, width))
    weights[:k, :n] = rhs

    # Phase 2: stream the LHS with a one-cycle skew per PE row.  The
    # horizontal registers carry activations rightward; the vertical
    # registers carry partial sums downward.
    h_regs = np.zeros((height, width))
    v_regs = np.zeros((height, width))
    output = np.zeros((m, n))
    collected = 0
    cycle = 0
    # Row i of the output exits column c at cycle i + k - 1 + c; run
    # until every output has been collected.
    max_cycles = m + k + width + 8  # safety bound; loop exits earlier
    while collected < m * n and cycle < max_cycles:
        # Shift activations right and partial sums down (read the
        # previous cycle's values before overwriting).
        h_prev = h_regs.copy()
        v_prev = v_regs.copy()
        h_regs[:, 1:] = h_prev[:, :-1]
        # Inject the skewed LHS at the left edge: row r sees element
        # lhs[cycle - r][r].
        for r in range(k):
            i = cycle - r
            h_regs[r, 0] = lhs[i, r] if 0 <= i < m else 0.0
        # Each PE multiplies its resident weight by the arriving
        # activation and adds the partial sum from the PE above.
        above = np.zeros((height, width))
        above[1:, :] = v_prev[:-1, :]
        v_regs = above + h_regs * weights
        # Outputs exit below the last latched row (row k-1).
        for c in range(n):
            i = cycle - (k - 1) - c
            if 0 <= i < m:
                output[i, c] = v_regs[k - 1, c]
                collected += 1
        cycle += 1
    if collected != m * n:
        raise RuntimeError("WS simulation failed to drain all outputs")
    return FunctionalResult(output=output, fill_cycles=fill_cycles,
                            stream_cycles=cycle)


def ws_stream_cycles(m: int, k: int, n: int) -> int:
    """Closed form of the functional stream time: ``m + k + n - 2``.

    The final output element (row m-1, column n-1) completes at cycle
    ``(m-1) + (k-1) + (n-1)`` counted from zero.  The analytic engine
    uses the paper's conservative variant with the *physical* array
    width (``m + k + PE_W - 1``, Figure 3(c)); the functional array
    retires the final output as soon as it leaves the last *used*
    column.
    """
    return m + k + n - 2
