"""Opt-in observability: simulated-time tracing, metrics, profiling.

Three tiers, all disabled by default and zero-cost when off (the
simulators take ``None`` and skip every hook — the differential tests
pin the disabled path byte-identical to the pre-observability code):

* :mod:`repro.obs.trace` — :class:`TraceRecorder`, Chrome-trace /
  Perfetto JSON over *simulated* time (training-step op spans, fleet
  job lifecycles, autoscaler instants), plus the ``python -m repro
  trace`` inspector's loader.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of labeled
  counters / gauges / P²-streamed histograms / windowed time series.
* :mod:`repro.obs.profile` — :class:`Profiler`, *wall-clock*
  self-profiling of the experiment harness (cache stage timings,
  hit/miss counts) written to a per-run JSON manifest.

:class:`FleetObs` binds a recorder and/or registry to one fleet
simulation (``simulate_fleet(..., obs=FleetObs(recorder=...))``).
"""

from repro.obs.fleet import FleetObs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.profile import Profiler
from repro.obs.trace import (
    TraceRecorder,
    load_trace,
    render_summary,
    summarize,
    validate_events,
)

__all__ = [
    "Counter",
    "FleetObs",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "TimeSeries",
    "TraceRecorder",
    "load_trace",
    "render_summary",
    "summarize",
    "validate_events",
]
