"""Labeled metrics registry with windowed time-series output.

A deliberately small, dependency-free slice of the Prometheus data
model, clocked on *simulated* time:

* :class:`Counter` — monotone count (jobs admitted, cache hits).
* :class:`Gauge` — last-write-wins level (active clusters).
* :class:`Histogram` — streamed distribution over observations,
  backed by :class:`repro.serve.stream.StreamingStats` (exact below
  the warmup size, P² quantile estimates beyond — the same
  machinery the streaming fleet simulator uses for its wait
  percentiles, so a million observations cost O(1) memory).
* :class:`TimeSeries` — per-window aggregates (count / sum / min /
  max / last) of a sampled value, the "queue depth over time" shape
  Perfetto counters and dashboards want.

Metrics are keyed by ``(name, sorted labels)`` through one
:class:`MetricsRegistry`, whose :meth:`~MetricsRegistry.to_dict` /
:meth:`~MetricsRegistry.write` emit a deterministic JSON document —
identical runs serialize byte-identically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.serve.stream import StreamingStats

#: A metric's identity: name plus its sorted label pairs.
MetricKey = "tuple[str, tuple[tuple[str, str], ...]]"


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def to_dict(self) -> dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """Last-write-wins instantaneous level."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Streamed distribution; quantiles via the shared P² machinery."""

    kind = "histogram"

    def __init__(self, quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)
                 ) -> None:
        self._stats = StreamingStats(quantiles)

    @property
    def count(self) -> int:
        return self._stats.count

    @property
    def mean(self) -> float:
        return self._stats.mean

    @property
    def maximum(self) -> float:
        return self._stats.maximum

    def observe(self, value: float) -> None:
        self._stats.add(float(value))

    def quantile(self, p: float) -> float:
        return self._stats.quantile(p)

    def to_dict(self) -> dict[str, Any]:
        return dict(self._stats.to_dict())


class TimeSeries:
    """Per-window aggregates of a value sampled in time order.

    ``add(t, v)`` folds ``v`` into the window ``floor(t / window_s)``;
    samples must arrive with nondecreasing ``t`` (simulation event
    order), so each window closes exactly once and memory is one open
    window plus the closed points.
    """

    kind = "series"

    __slots__ = ("window_s", "points", "_window", "_count", "_total",
                 "_min", "_max", "_last")

    def __init__(self, window_s: float = 60.0) -> None:
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.window_s = window_s
        self.points: list[dict[str, float]] = []
        self._window: int | None = None
        self._count = 0
        self._total = 0.0
        self._min = 0.0
        self._max = 0.0
        self._last = 0.0

    def _close(self) -> None:
        if self._window is None:
            return
        self.points.append({
            "t": self._window * self.window_s,
            "count": self._count,
            "sum": self._total,
            "min": self._min,
            "max": self._max,
            "last": self._last,
        })
        self._count = 0
        self._total = 0.0

    def add(self, t: float, value: float) -> None:
        window = int(t // self.window_s)
        if self._window is None or window > self._window:
            self._close()
            self._window = window
            self._min = self._max = value
        elif window < self._window:
            raise ValueError(
                f"sample at t={t} precedes open window {self._window}")
        else:
            self._min = min(self._min, value)
            self._max = max(self._max, value)
        self._count += 1
        self._total += value
        self._last = value

    def to_dict(self) -> dict[str, Any]:
        self._close()
        self._window = None
        return {"window_s": self.window_s, "points": list(self.points)}


class MetricsRegistry:
    """Name + label keyed store of the four metric kinds."""

    def __init__(self, window_s: float = 60.0) -> None:
        self.window_s = window_s
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]],
                            Counter | Gauge | Histogram | TimeSeries] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[tuple[
            tuple[str, tuple[tuple[str, str], ...]], Any]]:
        return iter(self._metrics.items())

    @staticmethod
    def _key(name: str, labels: Mapping[str, Any]
             ) -> tuple[str, tuple[tuple[str, str], ...]]:
        return name, tuple(sorted(
            (key, str(value)) for key, value in labels.items()))

    def _get(self, name: str, labels: Mapping[str, Any],
             factory: Any) -> Any:
        key = self._key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        elif not isinstance(metric, type(factory())):
            raise TypeError(
                f"metric {name!r}{dict(key[1])} already registered as "
                f"{metric.kind}")
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(name, labels, Gauge)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(name, labels, Histogram)

    def series(self, name: str, **labels: Any) -> TimeSeries:
        return self._get(name, labels,
                         lambda: TimeSeries(self.window_s))

    def to_dict(self) -> dict[str, Any]:
        """Deterministic JSON document: one entry per metric, sorted."""
        metrics = []
        for (name, labels), metric in sorted(
                self._metrics.items(), key=lambda item: item[0]):
            metrics.append({"name": name, "labels": dict(labels),
                            "kind": metric.kind, **metric.to_dict()})
        return {"window_s": self.window_s, "metrics": metrics}

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1) + "\n")
        return path
