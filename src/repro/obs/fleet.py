"""Fleet-simulator observability: job-lifecycle spans + windowed metrics.

One :class:`FleetObs` observes one fleet simulation.  The contract is
split to keep the event loops fast:

* **During the run** the schedulers touch only two O(1) surfaces: an
  inline ``(job_id, start_s)`` append per dispatch (streaming path
  only — the scalar path's :class:`~repro.serve.scheduler.JobRecord`
  list already carries dispatch times) and one
  :meth:`~FleetObs.sample` call per elapsed metrics window.  Nothing
  else runs in-loop, which is what keeps the measured
  enabled-vs-disabled overhead inside the ``check_bench`` ceiling.
* **At the end of the run** the scheduler attaches its raw materials
  (:meth:`~FleetObs.attach_scalar` / :meth:`~FleetObs.attach_streaming`
  — references, no copies).  All span construction and metric folding
  happens later, in :meth:`~FleetObs.export`, outside any timed
  region.

Both attach paths normalize to the same per-job rows before emitting,
so a scalar and a streaming run of the same trace — which the
differential tests pin to identical dispatch schedules — produce
*identical span sets*, and a multi-policy comparison can share one
:class:`~repro.obs.trace.TraceRecorder` (each run gets its own trace
process, named after its policy).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import TraceRecorder
    from repro.serve.autoscale import AutoscalerState, ScaleEvent
    from repro.serve.budget import BatchAdmissionDecisions
    from repro.serve.faults import FaultEvent, FaultRun
    from repro.serve.job import TraceArrays
    from repro.serve.scheduler import JobRecord

#: Normalized job row: (job_id, tenant, model, arrival_s, status code,
#: granted_steps, requested_steps, epsilon_after, start_s, finish_s).
#: Status codes are :class:`~repro.serve.budget.BatchAdmissionDecisions`'s
#: (0 admitted, 1 truncated, 2 rejected); start/finish are None for
#: rejected jobs.
JobRow = "tuple[int, str, str, float, int, int, int, float, float | None, float | None]"

_OUTCOMES = ("admitted", "truncated", "rejected")


class FleetObs:
    """Observability bundle for one fleet-simulation run.

    Pass the same ``recorder`` to several ``FleetObs`` instances to
    collect a multi-policy comparison into one trace file; metrics
    registries are typically per-run (per-policy).
    """

    def __init__(self, *,
                 recorder: "TraceRecorder | None" = None,
                 metrics: "MetricsRegistry | None" = None,
                 window_s: float = 60.0) -> None:
        if recorder is None and metrics is None:
            raise ValueError(
                "FleetObs needs a recorder, a metrics registry, or both")
        self.recorder = recorder
        self.metrics = metrics
        self.window_s = metrics.window_s if metrics is not None \
            else window_s
        #: Streaming-path dispatch sink: ``(job_id, start_s)`` appended
        #: inline by the scheduler's dispatch loop.
        self.dispatches: list[tuple[int, float]] = []
        #: Windowed load samples: ``(t, queued, idle, active, pending)``.
        self.samples: list[tuple[float, int, int, int, int]] = []
        #: Next simulated time at which the scheduler should sample.
        self.next_sample_s = 0.0
        self._run: dict[str, Any] | None = None
        self._exported = False

    # -- in-loop surface ---------------------------------------------------

    def sample(self, now: float, queued: int, idle: int, active: int,
               pending: int) -> None:
        """Record one load sample; advances the next window boundary."""
        self.samples.append((now, queued, idle, active, pending))
        self.next_sample_s = (int(now // self.window_s) + 1) \
            * self.window_s

    # -- end-of-run attachment (references only, O(1)) ---------------------

    def _attach(self, run: dict[str, Any]) -> None:
        if self._run is not None:
            raise RuntimeError(
                "FleetObs already observed a run; use one instance per "
                "simulate_fleet/simulate_fleet_streaming call")
        self._run = run

    def attach_scalar(self, *, policy: str,
                      records: "list[JobRecord]",
                      state: "AutoscalerState | None",
                      faults: "FaultRun | None" = None) -> None:
        self._attach({"mode": "scalar", "policy": policy,
                      "records": records, "state": state,
                      "faults": faults})

    def attach_streaming(self, *, policy: str, trace: "TraceArrays",
                         decisions: "BatchAdmissionDecisions",
                         service: Any,
                         state: "AutoscalerState | None",
                         faults: "FaultRun | None" = None) -> None:
        self._attach({"mode": "streaming", "policy": policy,
                      "trace": trace, "decisions": decisions,
                      "service": service, "state": state,
                      "faults": faults})

    # -- export ------------------------------------------------------------

    def export(self) -> None:
        """Build spans / fold metrics from the attached run (once)."""
        if self._run is None:
            raise RuntimeError("no run attached; simulate first")
        if self._exported:
            return
        self._exported = True
        run = self._run
        policy: str = run["policy"]
        state: "AutoscalerState | None" = run["state"]
        faults: "FaultRun | None" = run.get("faults")
        scale_events: "tuple[ScaleEvent, ...]" = \
            tuple(state.events) if state is not None else ()
        fault_events: "list[FaultEvent]" = \
            faults.events if faults is not None else []
        if run["mode"] == "scalar":
            rows: Iterable[Any] = _scalar_rows(run["records"])
        else:
            rows = _streaming_rows(run["trace"], run["decisions"],
                                   run["service"], self.dispatches)
        if self.recorder is not None and self.metrics is not None:
            rows = list(rows)
        if self.recorder is not None:
            _emit_spans(self.recorder, policy, rows, self.samples,
                        scale_events, fault_events)
        if self.metrics is not None:
            _fold_metrics(self.metrics, policy, rows, self.samples,
                          scale_events, fault_events)


def _scalar_rows(records: "list[JobRecord]") -> "Iterator[Any]":
    from repro.serve.budget import AdmissionStatus

    code = {AdmissionStatus.ADMITTED: 0, AdmissionStatus.TRUNCATED: 1,
            AdmissionStatus.REJECTED: 2}
    for rec in records:
        yield (rec.job.job_id, rec.job.tenant, rec.job.model,
               float(rec.job.arrival_s), code[rec.decision.status],
               int(rec.decision.granted_steps), int(rec.job.steps),
               float(rec.decision.epsilon_after),
               rec.start_s, rec.finish_s)


def _streaming_rows(trace: "TraceArrays",
                    decisions: "BatchAdmissionDecisions",
                    service: Any,
                    dispatches: "list[tuple[int, float]]"
                    ) -> "Iterator[Any]":
    """Reconstruct per-job rows from the streaming run's arrays.

    The streaming loop never materializes job records — its completion
    heap holds only times — so lifecycles are rebuilt here: arrival
    and admission from the trace + batched decisions, dispatch from
    the inline sink, completion as ``start + service`` (bitwise the
    float the loop pushed onto its heap, so spans match the scalar
    simulator's exactly).
    """
    starts: dict[int, float] = dict(dispatches)
    for job in range(len(trace)):
        start = starts.get(job)
        finish = float(start + service[job]) if start is not None \
            else None
        yield (job, trace.tenants[int(trace.tenant[job])],
               trace.models[int(trace.model[job])],
               float(trace.arrival_s[job]),
               int(decisions.status[job]),
               int(decisions.granted_steps[job]),
               int(trace.steps[job]),
               float(decisions.epsilon_after[job]),
               start, finish)


def _emit_spans(recorder: "TraceRecorder", policy: str,
                rows: Iterable[Any],
                samples: "list[tuple[float, int, int, int, int]]",
                scale_events: "tuple[ScaleEvent, ...]",
                fault_events: "list[FaultEvent]" = []) -> None:
    pid = recorder.pid(f"fleet: {policy}")
    for (job, tenant, model, arrival, status, granted, requested,
         eps_after, start, finish) in rows:
        tid = recorder.tid(pid, tenant)
        if status == 2 or start is None:
            recorder.instant(
                f"job-{job} rejected", arrival, pid=pid, tid=tid,
                cat="admission",
                args={"model": model, "requested_steps": requested,
                      "epsilon_after": eps_after})
            continue
        args = {"model": model, "granted_steps": granted,
                "requested_steps": requested,
                "epsilon_after": eps_after}
        if status == 1:
            args["truncated"] = True
        recorder.span(f"job-{job} wait", arrival, start - arrival,
                      pid=pid, tid=tid, cat="queue")
        recorder.span(f"job-{job} run", start, finish - start,
                      pid=pid, tid=tid, cat="run", args=args)
    scale_tid = recorder.tid(pid, "autoscaler")
    for event in scale_events:
        recorder.instant(
            event.label, event.time_s, pid=pid, tid=scale_tid,
            cat="autoscale", args=event.to_dict())
    if fault_events:
        fault_tid = recorder.tid(pid, "faults")
        # A "retry" is the backoff wait that began at the matching
        # failure instant — render it as a span, the rest as instants.
        crash_at = {(e.job_id, e.attempt): e.time_s
                    for e in fault_events if e.kind == "failure"}
        for event in fault_events:
            args = {"job": event.job_id, "attempt": event.attempt}
            if event.kind == "retry":
                crash_s = crash_at[(event.job_id, event.attempt)]
                recorder.span(
                    f"job-{event.job_id} backoff", crash_s,
                    event.time_s - crash_s, pid=pid, tid=fault_tid,
                    cat="fault", args=args)
            else:
                recorder.instant(
                    f"job-{event.job_id} {event.kind}", event.time_s,
                    pid=pid, tid=fault_tid, cat="fault", args=args)
    for t, queued, idle, active, pending in samples:
        recorder.counter("queue depth", t, {"queued": queued}, pid=pid)
        recorder.counter("clusters", t,
                         {"running": active - idle, "idle": idle,
                          "pending": pending}, pid=pid)


def _fold_metrics(metrics: "MetricsRegistry", policy: str,
                  rows: Iterable[Any],
                  samples: "list[tuple[float, int, int, int, int]]",
                  scale_events: "tuple[ScaleEvent, ...]",
                  fault_events: "list[FaultEvent]" = []) -> None:
    """Fold one run into counters / histograms / windowed series."""
    waits = metrics.histogram("wait_s", policy=policy)
    service = metrics.histogram("service_s", policy=policy)
    for (job, tenant, model, arrival, status, granted, requested,
         eps_after, start, finish) in rows:
        outcome = _OUTCOMES[status]
        metrics.counter("jobs", policy=policy, tenant=tenant,
                        outcome=outcome).inc()
        metrics.series("arrival_rate", policy=policy,
                       outcome=outcome).add(arrival, 1.0)
        metrics.series("tenant_epsilon_spent", policy=policy,
                       tenant=tenant).add(arrival, eps_after)
        if start is not None:
            waits.observe(start - arrival)
            service.observe(finish - start)
    for t, queued, idle, active, pending in samples:
        running = active - idle
        metrics.series("queue_depth", policy=policy).add(t, queued)
        metrics.series("running_jobs", policy=policy).add(t, running)
        metrics.series("active_clusters", policy=policy).add(t, active)
        metrics.series("utilization", policy=policy).add(
            t, running / active if active > 0 else 0.0)
    for event in scale_events:
        metrics.counter("scale_decisions", policy=policy,
                        action=event.action, reason=event.reason).inc()
    for fault in fault_events:
        metrics.counter("fault_events", policy=policy,
                        kind=fault.kind).inc()
    if samples:
        metrics.gauge("peak_queue_depth", policy=policy).set(
            max(sample[1] for sample in samples))
