"""Wall-clock self-profiling of the experiment harness.

Unlike the tracer and metrics registry — which observe *simulated*
time — the :class:`Profiler` measures the harness itself: how long the
cache lookup / batched evaluation / write-back stages of
:func:`repro.experiments.runner.cached_batch` and
:func:`~repro.experiments.runner.cached_sweep` actually took on the
host, plus counters the stages report (cache hits / misses / stale
entries, batch sizes).  The result is a small per-run JSON manifest —
the answer to "where did my sweep spend its time?".

This module is the sanctioned home of host-clock reads: lint rule
R006 (:mod:`repro.analysis.walltime`) forbids ``time.time()`` /
``time.perf_counter()`` everywhere else in ``src/repro`` so simulated
and wall time can never mix silently.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator


class Profiler:
    """Accumulates named stage timings and counters for one run."""

    def __init__(self, name: str = "run") -> None:
        self.name = name
        #: stage -> [calls, total wall seconds]
        self._stages: dict[str, list[float]] = {}
        self.counters: dict[str, float] = {}
        self._born = time.perf_counter()

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one pass through stage ``name`` (re-entrant by name)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            entry = self._stages.setdefault(name, [0, 0.0])
            entry[0] += 1
            entry[1] += time.perf_counter() - start

    def count(self, name: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` into counter ``name``."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    def stage_seconds(self, name: str) -> float:
        return self._stages.get(name, [0, 0.0])[1]

    def manifest(self) -> dict[str, Any]:
        """The JSON document: total wall time, stages, counters."""
        return {
            "profile": self.name,
            "wall_seconds": time.perf_counter() - self._born,
            "stages": {
                name: {"calls": int(calls), "seconds": seconds}
                for name, (calls, seconds) in sorted(self._stages.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.manifest(), indent=1) + "\n")
        return path
