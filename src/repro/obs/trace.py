"""Simulated-time tracing: Chrome-trace/Perfetto JSON recorder + inspector.

:class:`TraceRecorder` accumulates *simulated-time* events — spans,
instants, counters, async overlap slices — and serializes them in the
Chrome trace event format (the ``{"traceEvents": [...]}`` JSON that
``chrome://tracing`` and https://ui.perfetto.dev load directly).  The
clock is the simulation's, not the host's: span timestamps come from
event-loop ``now`` values or cycle counts divided by a clock frequency,
converted to the format's microsecond unit.

The recorder is deliberately dumb — callers hand it fully-resolved
events and it never reads a wall clock, so identical simulation inputs
produce byte-identical trace files (pinned by the determinism tests).
Layout helpers for the two producers live alongside it:

* :func:`add_training_step_spans` /
  :func:`add_cluster_step_spans` lay one training step's per-phase and
  per-GEMM :class:`~repro.arch.accelerator.OpRun` records on a
  simulated timeline (communication overlap appears as an async
  ``hidden`` slice, since it runs concurrently with backward compute).
* :mod:`repro.obs.fleet` builds job-lifecycle spans and autoscaler
  instants for the fleet simulators.

The ``python -m repro trace`` inspector round-trips files through
:func:`load_trace` (schema validation: every event must carry its
phase's required keys — ``ph``/``ts``/``pid``/``tid`` at minimum) and
:func:`summarize`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.training.simulate import (
        ClusterTrainingReport,
        GemmOp,
        TrainingReport,
    )
    from repro.arch.accelerator import OpRun

#: Microseconds per simulated second — the trace format's time unit.
US_PER_S = 1e6


class TraceRecorder:
    """Accumulates Chrome-trace events over simulated time.

    Processes (``pid``) and threads (``tid``) are allocated by name on
    first use, in call order, so a run that emits the same logical
    streams in the same order gets the same ids — a prerequisite for
    deterministic output and for the scalar/streaming span-set
    equality the fleet tests pin.
    """

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[int, str], int] = {}

    def __len__(self) -> int:
        return len(self.events)

    # -- id allocation -----------------------------------------------------

    def pid(self, name: str) -> int:
        """Process id for ``name``, allocating (and naming) on first use."""
        if name not in self._pids:
            pid = self._pids[name] = len(self._pids)
            self.events.append({
                "name": "process_name", "ph": "M", "ts": 0.0,
                "pid": pid, "tid": 0, "args": {"name": name}})
        return self._pids[name]

    def tid(self, pid: int, name: str) -> int:
        """Thread id for ``name`` under ``pid``, allocating on first use."""
        key = (pid, name)
        if key not in self._tids:
            tid = self._tids[key] = sum(
                1 for (p, _) in self._tids if p == pid)
            self.events.append({
                "name": "thread_name", "ph": "M", "ts": 0.0,
                "pid": pid, "tid": tid, "args": {"name": name}})
        return self._tids[key]

    # -- event emission ----------------------------------------------------

    def span(self, name: str, start_s: float, dur_s: float, *,
             pid: int = 0, tid: int = 0, cat: str = "sim",
             args: Mapping[str, Any] | None = None) -> None:
        """One complete (``ph="X"``) span of ``dur_s`` simulated seconds."""
        event = {"name": name, "ph": "X", "cat": cat,
                 "ts": start_s * US_PER_S, "dur": dur_s * US_PER_S,
                 "pid": pid, "tid": tid}
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def instant(self, name: str, ts_s: float, *,
                pid: int = 0, tid: int = 0, cat: str = "sim",
                args: Mapping[str, Any] | None = None) -> None:
        """One thread-scoped instant (``ph="i"``) event."""
        event = {"name": name, "ph": "i", "cat": cat, "s": "t",
                 "ts": ts_s * US_PER_S, "pid": pid, "tid": tid}
        if args:
            event["args"] = dict(args)
        self.events.append(event)

    def counter(self, name: str, ts_s: float,
                values: Mapping[str, float], *, pid: int = 0) -> None:
        """One counter (``ph="C"``) sample — Perfetto plots each key."""
        self.events.append({
            "name": name, "ph": "C", "cat": "metrics",
            "ts": ts_s * US_PER_S, "pid": pid, "tid": 0,
            "args": dict(values)})

    def async_span(self, name: str, start_s: float, dur_s: float, *,
                   span_id: int, pid: int = 0, tid: int = 0,
                   cat: str = "overlap",
                   args: Mapping[str, Any] | None = None) -> None:
        """One async (``ph="b"``/``"e"``) slice for overlapped work.

        Async events live on their own track per ``(cat, id)``, which
        is how work that runs *concurrently* with a synchronous span
        stack (hidden allreduce time behind backward compute) renders
        without distorting the stack.
        """
        begin = {"name": name, "ph": "b", "cat": cat,
                 "ts": start_s * US_PER_S, "pid": pid, "tid": tid,
                 "id": span_id}
        if args:
            begin["args"] = dict(args)
        self.events.append(begin)
        self.events.append({"name": name, "ph": "e", "cat": cat,
                            "ts": (start_s + dur_s) * US_PER_S,
                            "pid": pid, "tid": tid, "id": span_id})

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"traceEvents": list(self.events),
                "displayTimeUnit": "ms"}

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path: str | Path) -> Path:
        """Serialize to ``path``; returns the written path."""
        path = Path(path)
        path.write_text(self.to_json(indent=1) + "\n")
        return path


# -- training-step span layout ---------------------------------------------


def _gemm_label(op: "GemmOp") -> str:
    gemm = op.gemm
    label = f"gemm {gemm.m}x{gemm.k}x{gemm.n}"
    if gemm.count > 1:
        label += f" x{gemm.count}"
    if gemm.layer:
        label += f" [{gemm.layer}]"
    return label


def add_training_step_spans(
    recorder: TraceRecorder,
    report: "TrainingReport",
    op_log: "Iterable[tuple[GemmOp, OpRun]]",
    *,
    pid: int | None = None,
    offset_s: float = 0.0,
) -> float:
    """Lay one single-chip step on the recorder's timeline.

    Phases run back to back in :data:`~repro.training.phases.PHASE_ORDER`
    (the simulator charges them as a serial critical path); within each
    phase the vector-unit slice precedes the GEMMs in schedule order.
    Returns the end-of-step time in seconds, so a caller stacking a
    communication phase on top (:func:`add_cluster_step_spans`) knows
    where to continue.
    """
    from repro.training.phases import PHASE_ORDER

    if pid is None:
        pid = recorder.pid(f"step: {report.network} "
                           f"{report.algorithm.value} "
                           f"B={report.batch} on {report.accelerator}")
    tid = recorder.tid(pid, "phases")
    op_tid = recorder.tid(pid, "ops")
    hz = report.frequency_hz
    by_phase: dict[Any, list[tuple[GemmOp, OpRun]]] = {}
    for op, run in op_log:
        by_phase.setdefault(op.phase, []).append((op, run))

    cursor = offset_s
    for phase in PHASE_ORDER:
        run = report.phases.get(phase)
        if run is None:
            continue
        phase_s = run.cycles / hz
        recorder.span(str(phase), cursor, phase_s, pid=pid, tid=tid,
                      cat="phase", args=run.trace_args())
        op_cursor = cursor
        gemm_cycles = sum(r.cycles for _, r in by_phase.get(phase, ()))
        vector_cycles = run.cycles - gemm_cycles
        if vector_cycles > 0:
            recorder.span(f"{phase} vector", op_cursor,
                          vector_cycles / hz, pid=pid, tid=op_tid,
                          cat="vector")
            op_cursor += vector_cycles / hz
        for op, op_run in by_phase.get(phase, ()):
            op_s = op_run.cycles / hz
            recorder.span(_gemm_label(op), op_cursor, op_s, pid=pid,
                          tid=op_tid, cat="gemm",
                          args=op_run.trace_args())
            op_cursor += op_s
        cursor += phase_s
    return cursor


def add_cluster_step_spans(
    recorder: TraceRecorder,
    report: "ClusterTrainingReport",
    op_log: "Iterable[tuple[GemmOp, OpRun]]",
) -> float:
    """Lay one sharded step (shard phases + collectives) on the timeline.

    The shard timeline is one chip's (all chips are identical); the
    exposed collective time appears as a ``Comm`` span after the local
    phases, and any overlapped wire time (``comm.hidden_cycles``)
    becomes an async ``allreduce (hidden)`` slice ending where the
    exposed span begins — the wire was busy *during* backward compute.

    Pipelined steps (``report.pipeline_cycles > 0``) additionally get
    one track per pipeline stage, each span staggered by one
    microbatch's fill delay, and the schedule's idle time as an async
    ``pipeline bubble`` slice — concurrent with the stage stack, the
    same way hidden allreduce time renders.
    """
    from repro.training.phases import Phase

    pid = recorder.pid(f"step: {report.shard.network} "
                       f"{report.shard.algorithm.value} "
                       f"B={report.global_batch} on {report.cluster} "
                       f"x{report.n_chips}")
    comm_start = add_training_step_spans(
        recorder, report.shard, op_log, pid=pid)
    tid = recorder.tid(pid, "phases")
    hz = report.frequency_hz
    if report.pipeline_cycles > 0 and report.stage_cycles:
        m = max(report.microbatches, 1)
        bounds = report.stage_bounds
        fill_s = 0.0
        for j, cycles in enumerate(report.stage_cycles):
            label = f"stage {j}"
            if len(bounds) > j + 1:
                label += f" [L{bounds[j]}:{bounds[j + 1]})"
            stage_tid = recorder.tid(pid, label)
            recorder.span(label, fill_s, cycles / hz, pid=pid,
                          tid=stage_tid, cat="pipeline",
                          args={"cycles": cycles,
                                "microbatches": report.microbatches})
            # The next stage starts after one microbatch drains here.
            fill_s += cycles / m / hz
        if report.bubble_cycles > 0:
            bubble_s = report.bubble_cycles / hz
            recorder.async_span(
                "pipeline bubble", 0.0, bubble_s, span_id=2, pid=pid,
                tid=tid, cat="pipeline",
                args={"bubble_cycles": report.bubble_cycles,
                      "plan": str(report.plan)})
    comm = report.comm
    if comm.hidden_cycles > 0:
        hidden_s = comm.hidden_cycles / hz
        recorder.async_span(
            "allreduce (hidden)", comm_start - hidden_s, hidden_s,
            span_id=1, pid=pid, tid=tid, cat="comm",
            args={"hidden_cycles": comm.hidden_cycles,
                  "link_bytes": comm.link_bytes})
    exposed_s = comm.cycles / hz
    recorder.span(str(Phase.COMM), comm_start, exposed_s, pid=pid,
                  tid=tid, cat="comm", args=comm.trace_args())
    return comm_start + exposed_s


# -- inspector: load / validate / summarize --------------------------------

#: Keys every event of a given phase type must carry.  ``ph``/``pid``/
#: ``tid``/``ts`` are universal in the files this package writes;
#: phase-specific extras follow the Chrome trace event format spec.
_REQUIRED_KEYS: dict[str, tuple[str, ...]] = {
    "X": ("name", "ph", "ts", "dur", "pid", "tid"),
    "i": ("name", "ph", "ts", "pid", "tid", "s"),
    "I": ("name", "ph", "ts", "pid", "tid"),
    "C": ("name", "ph", "ts", "pid", "tid", "args"),
    "M": ("name", "ph", "pid", "tid", "args"),
    "b": ("name", "ph", "ts", "pid", "tid", "id", "cat"),
    "e": ("name", "ph", "ts", "pid", "tid", "id", "cat"),
    "B": ("name", "ph", "ts", "pid", "tid"),
    "E": ("ph", "ts", "pid", "tid"),
}


def validate_events(events: Any) -> list[str]:
    """Schema problems of a ``traceEvents`` list (empty = valid)."""
    problems: list[str] = []
    if not isinstance(events, list):
        return [f"traceEvents is {type(events).__name__}, expected list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        ph = event.get("ph")
        required = _REQUIRED_KEYS.get(ph)  # type: ignore[arg-type]
        if required is None:
            problems.append(f"event {index}: unknown ph {ph!r}")
            continue
        missing = [key for key in required if key not in event]
        if missing:
            problems.append(
                f"event {index} (ph={ph}): missing {', '.join(missing)}")
            continue
        for key in ("ts", "dur"):
            if key in event and not isinstance(event[key], (int, float)):
                problems.append(
                    f"event {index} (ph={ph}): {key} is not numeric")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(
                    f"event {index} (ph={ph}): {key} is not an int")
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
    return problems


def load_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load + schema-validate a trace file; returns its event list.

    Accepts both the ``{"traceEvents": [...]}`` object form this
    package writes and the bare JSON-array form the Chrome format also
    allows.  Raises ``ValueError`` listing the first schema problems.
    """
    payload = json.loads(Path(path).read_text())
    events = payload.get("traceEvents") if isinstance(payload, dict) \
        else payload
    problems = validate_events(events)
    if problems:
        raise ValueError(
            f"{path}: not a valid Chrome trace: " + "; ".join(problems))
    return events


def summarize(events: list[dict[str, Any]]) -> dict[str, Any]:
    """Inspector summary: per-process span counts, duration, extremes."""
    names: dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[event["pid"]] = event["args"]["name"]
    processes: dict[int, dict[str, Any]] = {}
    counts: dict[str, int] = {}
    for event in events:
        counts[event["ph"]] = counts.get(event["ph"], 0) + 1
        if event["ph"] == "M":
            continue
        info = processes.setdefault(event["pid"], {
            "name": names.get(event["pid"], f"pid {event['pid']}"),
            "spans": 0, "instants": 0, "counters": 0, "async": 0,
            "end_ts": 0.0, "longest_span": None})
        end = event.get("ts", 0.0) + event.get("dur", 0.0)
        info["end_ts"] = max(info["end_ts"], end)
        if event["ph"] == "X":
            info["spans"] += 1
            longest = info["longest_span"]
            if longest is None or event["dur"] > longest["dur"]:
                info["longest_span"] = {"name": event["name"],
                                        "dur": event["dur"]}
        elif event["ph"] in ("i", "I"):
            info["instants"] += 1
        elif event["ph"] == "C":
            info["counters"] += 1
        elif event["ph"] in ("b", "e"):
            info["async"] += 1
    return {
        "events": len(events),
        "by_phase_type": dict(sorted(counts.items())),
        "processes": [processes[pid] for pid in sorted(processes)],
    }


def render_summary(summary: dict[str, Any]) -> str:
    """Human-readable inspector output for one summarized trace."""
    by_type = ", ".join(f"{count} {ph}" for ph, count
                        in summary["by_phase_type"].items())
    lines = [f"{summary['events']} events ({by_type})"]
    for proc in summary["processes"]:
        line = (f"  {proc['name']}: {proc['spans']} spans, "
                f"{proc['instants']} instants, "
                f"{proc['counters']} counter samples, "
                f"{proc['async']} async slices, "
                f"ends at {proc['end_ts'] / US_PER_S:.3f}s")
        longest = proc["longest_span"]
        if longest is not None:
            line += (f"; longest span {longest['name']!r} "
                     f"({longest['dur'] / US_PER_S * 1e3:.3f}ms)")
        lines.append(line)
    return "\n".join(lines)
