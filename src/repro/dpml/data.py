"""Synthetic datasets shaped like the paper's workloads.

The paper trains on CIFAR-10-scale images and short text sequences; the
simulator only needs tensor shapes, and the functional DP-SGD substrate
trains on shape-identical synthetic data (see DESIGN.md substitutions).
Class-conditional Gaussian blobs give a learnable signal so convergence
tests are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Dataset:
    """An in-memory dataset of examples and integer labels."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError("examples and labels must align")

    def __len__(self) -> int:
        return len(self.x)

    def batches(self, batch_size: int,
                rng: np.random.Generator | None = None):
        """Yield shuffled mini-batches (drops the ragged tail)."""
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        rng = rng or np.random.default_rng(0)
        order = rng.permutation(len(self))
        for start in range(0, len(self) - batch_size + 1, batch_size):
            idx = order[start:start + batch_size]
            yield self.x[idx], self.y[idx]

    def poisson_batch(self, sampling_rate: float,
                      rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Poisson-sample a batch (the sampling DP-SGD accounting assumes)."""
        mask = rng.random(len(self)) < sampling_rate
        if not mask.any():  # ensure a non-empty batch
            mask[rng.integers(len(self))] = True
        return self.x[mask], self.y[mask]


def synthetic_classification(
    examples: int = 512,
    features: int = 32,
    classes: int = 10,
    separation: float = 2.0,
    seed: int = 0,
) -> Dataset:
    """Class-conditional Gaussian blobs in feature space."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, separation, size=(classes, features))
    labels = rng.integers(0, classes, size=examples)
    x = centers[labels] + rng.normal(0.0, 1.0, size=(examples, features))
    return Dataset(x=x.astype(np.float64), y=labels)


def synthetic_images(
    examples: int = 256,
    channels: int = 3,
    size: int = 8,
    classes: int = 10,
    separation: float = 1.5,
    seed: int = 0,
) -> Dataset:
    """CIFAR-shaped class-conditional image blobs (B, C, H, W)."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, separation,
                         size=(classes, channels, size, size))
    labels = rng.integers(0, classes, size=examples)
    x = centers[labels] + rng.normal(0.0, 1.0,
                                     size=(examples, channels, size, size))
    return Dataset(x=x.astype(np.float64), y=labels)


def synthetic_sequences(
    examples: int = 256,
    seq_len: int = 16,
    features: int = 24,
    classes: int = 4,
    separation: float = 1.5,
    seed: int = 0,
) -> Dataset:
    """Sequence-shaped blobs (B, L, F) for SeqDense stacks."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(0.0, separation, size=(classes, seq_len, features))
    labels = rng.integers(0, classes, size=examples)
    x = centers[labels] + rng.normal(0.0, 1.0,
                                     size=(examples, seq_len, features))
    return Dataset(x=x.astype(np.float64), y=labels)
