"""End-to-end DP training loop with privacy accounting.

Combines the :class:`~repro.dpml.dpsgd.DpSgdOptimizer` with the
:class:`~repro.dpml.accountant.RdpAccountant`, reporting the
``(epsilon, delta)`` spent — the full pipeline of Algorithm 1 including
its output line ("model weight w_T and total privacy cost (eps, delta)").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dpml.accountant import RdpAccountant
from repro.dpml.data import Dataset
from repro.dpml.dpsgd import DpSgdOptimizer, PrivacyParams
from repro.dpml.layers import Sequential
from repro.dpml.loss import accuracy


@dataclass
class TrainingHistory:
    """Per-step telemetry of a DP training run."""

    losses: list[float] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)
    epsilons: list[float] = field(default_factory=list)

    @property
    def final_epsilon(self) -> float:
        return self.epsilons[-1] if self.epsilons else 0.0


def train_dpsgd(
    network: Sequential,
    dataset: Dataset,
    steps: int = 50,
    batch_size: int = 32,
    lr: float = 0.5,
    clip_norm: float = 1.0,
    noise_multiplier: float = 1.0,
    delta: float = 1e-5,
    method: str = "reweighted",
    sampling: str = "shuffle",
    seed: int = 0,
) -> tuple[TrainingHistory, RdpAccountant]:
    """Train with DP-SGD and account the privacy spent.

    ``method`` selects the gradient procedure: ``"dpsgd"`` (materialized
    per-example gradients) or ``"reweighted"`` (DP-SGD(R)); both yield
    the same distribution over updates.

    ``sampling`` selects mini-batch construction: ``"shuffle"`` (the
    common practice) or ``"poisson"`` — independent inclusion with
    probability ``batch_size / len(dataset)``, the scheme the RDP
    accountant's subsampling amplification formally assumes.
    """
    if method not in ("dpsgd", "reweighted"):
        raise ValueError(f"unknown method {method!r}")
    if sampling not in ("shuffle", "poisson"):
        raise ValueError(f"unknown sampling {sampling!r}")
    rng = np.random.default_rng(seed)
    optimizer = DpSgdOptimizer(
        network,
        lr=lr,
        privacy=PrivacyParams(clip_norm=clip_norm,
                              noise_multiplier=noise_multiplier),
        rng=rng,
    )
    sampling_rate = min(1.0, batch_size / len(dataset))
    accountant = RdpAccountant(
        sampling_rate=sampling_rate,
        noise_multiplier=noise_multiplier,
    )
    history = TrainingHistory()
    step_fn = (optimizer.step_dpsgd if method == "dpsgd"
               else optimizer.step_reweighted)

    def record(result) -> None:
        accountant.record_steps(1)
        history.losses.append(result.mean_loss)
        history.grad_norms.append(result.mean_grad_norm)
        history.epsilons.append(accountant.epsilon(delta))

    done = 0
    if sampling == "poisson":
        while done < steps:
            x, y = dataset.poisson_batch(sampling_rate, rng)
            record(step_fn(x, y))
            done += 1
    else:
        while done < steps:
            for x, y in dataset.batches(batch_size, rng=rng):
                record(step_fn(x, y))
                done += 1
                if done >= steps:
                    break
    return history, accountant


def evaluate(network: Sequential, dataset: Dataset,
             batch_size: int = 256) -> float:
    """Top-1 accuracy of ``network`` over ``dataset``."""
    correct = 0.0
    seen = 0
    for start in range(0, len(dataset), batch_size):
        x = dataset.x[start:start + batch_size]
        y = dataset.y[start:start + batch_size]
        logits = network.forward(x, train=False)
        correct += accuracy(logits, y) * len(x)
        seen += len(x)
    return correct / seen
