"""Softmax cross-entropy with per-example gradients.

DP-SGD needs *unaveraged* per-example loss gradients (the ``1/B``
normalization happens after clipping and noising, Algorithm 1 line 24),
so the backward result is one gradient row per example.
"""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-subtraction for stability."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-example loss and per-example loss gradient.

    Parameters
    ----------
    logits:
        (B, classes) scores.
    labels:
        (B,) integer class labels.

    Returns
    -------
    (losses, grads):
        ``losses`` is (B,); ``grads`` is (B, classes), the gradient of
        each example's *own* loss (not averaged over the batch).
    """
    if logits.ndim != 2:
        raise ValueError(f"expected (B, classes) logits, got {logits.shape}")
    batch = logits.shape[0]
    if labels.shape != (batch,):
        raise ValueError(f"labels shape {labels.shape} != ({batch},)")
    probs = softmax(logits)
    picked = probs[np.arange(batch), labels]
    losses = -np.log(np.clip(picked, 1e-12, None))
    grads = probs.copy()
    grads[np.arange(batch), labels] -= 1.0
    return losses, grads


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy."""
    return float((logits.argmax(axis=-1) == labels).mean())
