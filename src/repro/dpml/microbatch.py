"""Virtual batching: DP-SGD over micro-batches with one noise draw.

The software-side answer to the Section III-A memory cliff (what Opacus
calls ``BatchMemoryManager``): a logical batch of ``B`` examples is
processed in micro-batches of ``b`` examples, accumulating *clipped*
per-example gradient sums; noise is added once, after the full logical
batch.  The result is mathematically identical to a single ``B``-sized
DP-SGD step — verified in the test suite — while the peak per-example
gradient memory shrinks by ``B / b``.
"""

from __future__ import annotations

import numpy as np

from repro.dpml.dpsgd import DpSgdOptimizer, StepResult, clip_scales
from repro.dpml.loss import softmax_cross_entropy
from repro.dpml.modes import GradMode


def clipped_grad_sum(per_example: np.ndarray,
                     scales: np.ndarray) -> np.ndarray:
    """Clipped gradient sum ``sum_b scales[b] * per_example[b]``.

    One stacked contraction (``tensordot`` over the example axis, the
    einsum ``b...,b->...``) instead of materializing the
    ``B x params`` scaled-gradient intermediate and reducing it — the
    hot inner op of every per-example clip-and-accumulate step.
    :func:`clipped_grad_sum_loop` is the per-example loop oracle the
    test suite pins this against.
    """
    return np.tensordot(scales, per_example, axes=(0, 0))


def clipped_grad_sum_loop(per_example: np.ndarray,
                          scales: np.ndarray) -> np.ndarray:
    """Per-example loop oracle for :func:`clipped_grad_sum`."""
    total = np.zeros_like(per_example[0])
    for gradient, scale in zip(per_example, scales):
        total = total + scale * gradient
    return total


class MicrobatchDpSgdOptimizer(DpSgdOptimizer):
    """DP-SGD with gradient accumulation over micro-batches."""

    def __init__(self, *args, microbatch_size: int = 16, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if microbatch_size <= 0:
            raise ValueError("microbatch_size must be positive")
        self.microbatch_size = microbatch_size

    def step_dpsgd(self, x: np.ndarray, labels: np.ndarray) -> StepResult:
        """One logical DP-SGD step, processed in micro-batches.

        Equivalent to :meth:`DpSgdOptimizer.step_dpsgd` on the whole
        batch (same clipped gradient sum; same single noise draw).
        """
        batch = x.shape[0]
        net = self.network
        accumulated: dict[tuple[int, str], np.ndarray] = {}
        losses: list[float] = []
        norms: list[float] = []
        clipped = 0

        for start in range(0, batch, self.microbatch_size):
            xb = x[start:start + self.microbatch_size]
            yb = labels[start:start + self.microbatch_size]
            net.zero_grads()
            logits = net.forward(xb)
            loss, dlogits = softmax_cross_entropy(logits, yb)
            net.backward(dlogits, mode=GradMode.PER_EXAMPLE)
            sq_norms = net.per_example_sq_norms()
            scales = clip_scales(sq_norms, self.privacy.clip_norm)
            for layer in net.weight_layers:
                for name, per_ex in layer.per_example_grads.items():
                    summed = clipped_grad_sum(per_ex, scales)
                    key = (id(layer), name)
                    if key in accumulated:
                        accumulated[key] += summed
                    else:
                        accumulated[key] = summed
            losses.extend(loss.tolist())
            norms.extend(np.sqrt(sq_norms).tolist())
            clipped += int((scales < 1.0).sum())

        # Single noise draw over the *logical* batch (Algorithm 1 line
        # 24) — noising per micro-batch would overcharge privacy.
        for layer in net.weight_layers:
            for name in layer.params:
                key = (id(layer), name)
                if key not in accumulated:
                    continue
                noisy = (accumulated[key]
                         + self._noise_like(accumulated[key])) / batch
                self._step_param(layer, name, noisy)
        self.steps_taken += 1
        return StepResult(
            mean_loss=float(np.mean(losses)),
            mean_grad_norm=float(np.mean(norms)),
            clipped_fraction=clipped / batch,
        )
