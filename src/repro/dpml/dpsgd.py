"""DP-SGD and reweighted DP-SGD(R) optimizers (Algorithm 1).

Both procedures produce *identical* noisy gradients given the same
mini-batch and noise draw — DP-SGD(R) is an algebraic reorganization,
not an approximation — which the test suite verifies numerically:

* ``DERIVE_DP_GRADIENTS``: materialize per-example gradients, clip each
  to L2 norm ``C``, sum, add ``N(0, sigma^2 C^2 I)``, divide by ``B``.
* ``DERIVE_REWEIGHTED_DP_GRADIENTS``: first backward pass derives only
  per-example gradient norms (ghost norms); the loss gradient of each
  example is then scaled by its clip factor and a second backward pass
  yields the clipped *sum* directly as a per-batch gradient.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dpml.layers import Sequential
from repro.dpml.loss import softmax_cross_entropy
from repro.dpml.modes import GradMode


@dataclass(frozen=True)
class PrivacyParams:
    """Clipping / noising hyper-parameters of Algorithm 1."""

    clip_norm: float = 1.0
    noise_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.clip_norm <= 0:
            raise ValueError("clip_norm must be positive")
        if self.noise_multiplier < 0:
            raise ValueError("noise_multiplier must be non-negative")


@dataclass(frozen=True)
class StepResult:
    """Telemetry of one optimizer step."""

    mean_loss: float
    mean_grad_norm: float
    clipped_fraction: float


def clip_scales(sq_norms: np.ndarray, clip_norm: float) -> np.ndarray:
    """Per-example scale ``1 / max(1, n_i / C)`` (Algorithm 1 line 23)."""
    norms = np.sqrt(np.maximum(sq_norms, 0.0))
    return 1.0 / np.maximum(1.0, norms / clip_norm)


class DpSgdOptimizer:
    """Differentially private SGD over a :class:`Sequential` network."""

    def __init__(
        self,
        network: Sequential,
        lr: float = 0.1,
        privacy: PrivacyParams | None = None,
        rng: np.random.Generator | None = None,
        momentum: float = 0.0,
    ) -> None:
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.network = network
        self.lr = lr
        self.privacy = privacy or PrivacyParams()
        self.rng = rng or np.random.default_rng(0)
        self.momentum = momentum
        self.steps_taken = 0
        self._velocity: dict[tuple[int, str], np.ndarray] = {}

    # -- shared pieces --------------------------------------------------------
    def _noise_like(self, array: np.ndarray) -> np.ndarray:
        sigma = self.privacy.noise_multiplier * self.privacy.clip_norm
        if sigma == 0.0:
            return np.zeros_like(array)
        return self.rng.normal(0.0, sigma, size=array.shape)

    def _step_param(self, layer, name: str, update: np.ndarray) -> None:
        """Apply one (possibly momentum-filtered) parameter update."""
        if self.momentum:
            key = (id(layer), name)
            velocity = self._velocity.get(key)
            if velocity is None:
                velocity = np.zeros_like(update)
            velocity = self.momentum * velocity + update
            self._velocity[key] = velocity
            update = velocity
        layer.params[name] -= self.lr * update

    def _apply_update(self, batch: int) -> None:
        """Add noise to each layer's summed gradient and step weights."""
        for layer in self.network.weight_layers:
            for name, grad in layer.grads.items():
                noisy = (grad + self._noise_like(grad)) / batch
                self._step_param(layer, name, noisy)

    # -- Algorithm 1, DERIVE_DP_GRADIENTS ------------------------------------
    def step_dpsgd(self, x: np.ndarray, labels: np.ndarray) -> StepResult:
        """One step of plain DP-SGD (per-example gradients materialized)."""
        batch = x.shape[0]
        net = self.network
        net.zero_grads()
        logits = net.forward(x)
        losses, dlogits = softmax_cross_entropy(logits, labels)
        net.backward(dlogits, mode=GradMode.PER_EXAMPLE)

        sq_norms = net.per_example_sq_norms()
        scales = clip_scales(sq_norms, self.privacy.clip_norm)
        # Stacked contraction over the example axis — no B x params
        # scaled-gradient intermediate (see repro.dpml.microbatch).
        from repro.dpml.microbatch import clipped_grad_sum

        for layer in net.weight_layers:
            for name, per_ex in layer.per_example_grads.items():
                layer.grads[name] = clipped_grad_sum(per_ex, scales)
        self._apply_update(batch)
        self.steps_taken += 1
        return StepResult(
            mean_loss=float(losses.mean()),
            mean_grad_norm=float(np.sqrt(sq_norms).mean()),
            clipped_fraction=float((scales < 1.0).mean()),
        )

    # -- Algorithm 1, DERIVE_REWEIGHTED_DP_GRADIENTS --------------------------
    def step_reweighted(self, x: np.ndarray, labels: np.ndarray) -> StepResult:
        """One step of DP-SGD(R): ghost-norm pass + reweighted pass."""
        batch = x.shape[0]
        net = self.network
        net.zero_grads()
        logits = net.forward(x)
        losses, dlogits = softmax_cross_entropy(logits, labels)

        # 1st backpropagation: per-example norms only, nothing stored.
        net.backward(dlogits, mode=GradMode.GHOST_NORM)
        sq_norms = net.per_example_sq_norms()
        scales = clip_scales(sq_norms, self.privacy.clip_norm)

        # 2nd backpropagation from the reweighted loss gradients:
        # d(sum_i L_i * s_i)/dw == the clipped gradient sum.
        net.backward(dlogits * scales[:, None], mode=GradMode.BATCH)
        self._apply_update(batch)
        self.steps_taken += 1
        return StepResult(
            mean_loss=float(losses.mean()),
            mean_grad_norm=float(np.sqrt(sq_norms).mean()),
            clipped_fraction=float((scales < 1.0).mean()),
        )

    # -- non-private baseline --------------------------------------------------
    def step_sgd(self, x: np.ndarray, labels: np.ndarray) -> StepResult:
        """One step of non-private mini-batch SGD (no clip, no noise)."""
        batch = x.shape[0]
        net = self.network
        net.zero_grads()
        logits = net.forward(x)
        losses, dlogits = softmax_cross_entropy(logits, labels)
        net.backward(dlogits, mode=GradMode.BATCH)
        for layer in net.weight_layers:
            for name, grad in layer.grads.items():
                self._step_param(layer, name, grad / batch)
        self.steps_taken += 1
        return StepResult(
            mean_loss=float(losses.mean()),
            mean_grad_norm=float("nan"),
            clipped_fraction=0.0,
        )
