"""Renyi differential privacy (RDP) accountant for DP-SGD.

Implements the moments/RDP accounting used by Abadi et al. and the
TensorFlow-Privacy / Opacus stacks: the subsampled Gaussian mechanism's
RDP at integer orders (Mironov et al., "Renyi Differential Privacy of
the Sampled Gaussian Mechanism", Theorem 5 / Eq. (3)) composed over
steps, then converted to an (epsilon, delta) guarantee.

For sampling rate ``q``, noise multiplier ``sigma`` and integer order
``alpha``::

    RDP(alpha) = log( sum_{k=0..alpha} C(alpha, k) (1-q)^(alpha-k) q^k
                      * exp(k (k-1) / (2 sigma^2)) ) / (alpha - 1)

Special cases covered exactly: ``q == 0`` gives 0 (no data touched),
``q == 1`` reduces to the Gaussian mechanism's ``alpha / (2 sigma^2)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np
from scipy import special

#: Default RDP orders, matching TF-Privacy's ladder.
DEFAULT_ORDERS: tuple[int, ...] = tuple(range(2, 64)) + (
    128, 256, 512, 1024)


def _log_comb(n: int, k: int) -> float:
    return (special.gammaln(n + 1) - special.gammaln(k + 1)
            - special.gammaln(n - k + 1))


def rdp_sampled_gaussian(q: float, sigma: float, order: int) -> float:
    """RDP of one subsampled-Gaussian step at an integer ``order``."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"sampling rate must be in [0, 1], got {q}")
    if order < 2 or int(order) != order:
        raise ValueError(f"order must be an integer >= 2, got {order}")
    if q == 0.0:
        return 0.0
    if sigma <= 0.0:
        return math.inf
    if q == 1.0:
        return order / (2.0 * sigma * sigma)
    order = int(order)
    log_terms = [
        _log_comb(order, k)
        + (order - k) * math.log1p(-q)
        + k * math.log(q)
        + k * (k - 1) / (2.0 * sigma * sigma)
        for k in range(order + 1)
    ]
    return float(special.logsumexp(log_terms)) / (order - 1)


@lru_cache(maxsize=512)
def _single_step_rdp(q: float, sigma: float,
                     orders: tuple[int, ...]) -> tuple[float, ...]:
    """One step's RDP curve, memoized per ``(q, sigma, orders)``.

    The curve is the expensive part of accounting (~66 orders with up
    to ``order + 1`` logsumexp terms each) and admission control /
    budget searches evaluate it for the same handful of mechanism
    parameters over and over.  Returned as a tuple so cache hits can
    never alias a mutable array.
    """
    return tuple(rdp_sampled_gaussian(q, sigma, order) for order in orders)


def compute_rdp(q: float, sigma: float, steps: int,
                orders: tuple[int, ...] = DEFAULT_ORDERS) -> np.ndarray:
    """RDP of ``steps`` composed subsampled-Gaussian mechanisms."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    return steps * np.array(_single_step_rdp(q, sigma, tuple(orders)))


def rdp_to_epsilon(orders: tuple[int, ...], rdp: np.ndarray,
                   delta: float) -> tuple[float, int]:
    """Convert an RDP curve to ``(epsilon, best_order)`` at ``delta``.

    Uses the standard conversion
    ``epsilon = RDP(alpha) + log(1/delta) / (alpha - 1)`` minimized over
    the available orders.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    rdp = np.asarray(rdp, dtype=float)
    if rdp.shape != (len(orders),):
        raise ValueError("orders and rdp must align")
    epsilons = rdp + math.log(1.0 / delta) / (np.array(orders) - 1.0)
    best = int(np.argmin(epsilons))
    return float(epsilons[best]), orders[best]


@dataclass
class RdpAccountant:
    """Tracks the cumulative privacy cost of a DP-SGD training run.

    Parameters
    ----------
    sampling_rate:
        Per-step probability each example is included (``B / N`` under
        Poisson sampling).
    noise_multiplier:
        ``sigma`` of Algorithm 1.
    """

    sampling_rate: float
    noise_multiplier: float
    orders: tuple[int, ...] = DEFAULT_ORDERS
    steps: int = 0
    _rdp: np.ndarray = field(default=None, repr=False)  # type: ignore

    def __post_init__(self) -> None:
        if self._rdp is None:
            self._rdp = np.zeros(len(self.orders))
        self._per_step = compute_rdp(
            self.sampling_rate, self.noise_multiplier, 1, self.orders)

    def record_steps(self, steps: int = 1) -> None:
        """Account for ``steps`` more DP-SGD iterations."""
        if steps < 0:
            raise ValueError("steps must be non-negative")
        self.steps += steps
        self._rdp = self._rdp + steps * self._per_step

    def epsilon(self, delta: float) -> float:
        """Current ``epsilon`` at the given ``delta``."""
        if self.steps == 0:
            return 0.0
        eps, _ = rdp_to_epsilon(self.orders, self._rdp, delta)
        return eps

    def privacy_spent(self, delta: float) -> tuple[float, float]:
        """The ``(epsilon, delta)`` pair reported by Algorithm 1."""
        return self.epsilon(delta), delta

    def max_steps_for_budget(self, target_epsilon: float, delta: float,
                             max_steps: int = 1_000_000) -> int:
        """How many *more* steps fit inside ``(target_epsilon, delta)``.

        Accounts for the steps already recorded: the returned count is
        the remaining affordable budget, not the total from scratch.
        See :func:`max_steps_for_budget` for the search itself.
        """
        return max_steps_for_budget(
            self.sampling_rate, self.noise_multiplier, target_epsilon,
            delta, orders=self.orders, base_rdp=self._rdp,
            max_steps=max_steps)


def epsilon_for_steps(q: float, sigma: float, steps: int, delta: float,
                      orders: tuple[int, ...] = DEFAULT_ORDERS) -> float:
    """``epsilon`` after ``steps`` subsampled-Gaussian iterations.

    Zero steps spend zero budget (matching
    :meth:`RdpAccountant.epsilon`, which special-cases the fresh
    accountant rather than reporting the RDP conversion's
    ``log(1/delta) / (alpha - 1)`` floor).
    """
    if steps == 0:
        return 0.0
    rdp = compute_rdp(q, sigma, steps, orders)
    return rdp_to_epsilon(orders, rdp, delta)[0]


def max_steps_for_budget(
    q: float,
    sigma: float,
    target_epsilon: float,
    delta: float,
    *,
    orders: tuple[int, ...] = DEFAULT_ORDERS,
    base_rdp: np.ndarray | None = None,
    max_steps: int = 1_000_000,
) -> int:
    """Largest step count whose ``epsilon`` stays within a budget.

    Binary search over the step axis: ``epsilon`` is nondecreasing in
    steps (RDP composes additively and the conversion is monotone), so
    the answer is the unique crossover.  Returns ``max_steps`` when
    even that many steps fit the budget (``q == 0`` never spends
    anything) and ``0`` when a single step already overshoots
    (``sigma <= 0`` has infinite per-step cost).

    ``base_rdp`` is an already-spent RDP curve over ``orders`` (e.g.
    from previous jobs of the same tenant): the search then returns
    the *additional* affordable steps.  This is what
    :meth:`RdpAccountant.max_steps_for_budget` and the serving layer's
    admission control use.
    """
    if target_epsilon <= 0:
        raise ValueError("target epsilon must be positive")
    if max_steps < 0:
        raise ValueError("max_steps must be non-negative")
    per_step = compute_rdp(q, sigma, 1, orders)
    base = (np.zeros(len(orders)) if base_rdp is None
            else np.asarray(base_rdp, dtype=float))
    if base.shape != (len(orders),):
        raise ValueError("base_rdp must align with orders")

    def eps(steps: int) -> float:
        # `steps == 0` must not touch per_step: 0 * inf (sigma <= 0)
        # would poison the curve with NaNs.
        rdp = base if steps == 0 else base + steps * per_step
        if not np.any(rdp):
            return 0.0
        return rdp_to_epsilon(orders, rdp, delta)[0]

    if eps(0) > target_epsilon:
        return 0
    if eps(max_steps) <= target_epsilon:
        return max_steps
    low, high = 0, max_steps  # eps(low) <= target < eps(high)
    while high - low > 1:
        mid = (low + high) // 2
        if eps(mid) <= target_epsilon:
            low = mid
        else:
            high = mid
    return low


def noise_multiplier_for_epsilon(
    target_epsilon: float,
    delta: float,
    sampling_rate: float,
    steps: int,
    lower: float = 0.3,
    upper: float = 64.0,
) -> float:
    """Smallest noise multiplier achieving ``target_epsilon`` (bisection)."""
    if target_epsilon <= 0:
        raise ValueError("target epsilon must be positive")

    def eps(sigma: float) -> float:
        rdp = compute_rdp(sampling_rate, sigma, steps)
        return rdp_to_epsilon(DEFAULT_ORDERS, rdp, delta)[0]

    if eps(upper) > target_epsilon:
        raise ValueError("target epsilon unreachable within sigma bounds")
    for _ in range(60):
        mid = 0.5 * (lower + upper)
        if eps(mid) > target_epsilon:
            lower = mid
        else:
            upper = mid
    return upper
