"""NumPy neural-network layers with per-example gradient support.

This is the functional substrate behind the paper's Algorithm 1: every
weight layer can derive (a) the standard per-batch gradient, (b) all
``B`` per-example gradients (plain DP-SGD), or (c) only the per-example
squared gradient *norms* via the ghost-norm identities (the reweighted
DP-SGD(R) first pass of Lee & Kifer) — without materializing the
gradients.

The ghost-norm identities used:

* rank-1 case (``Dense``): ``||x g^T||_F^2 = ||x||^2 ||g||^2``;
* sequence case (``SeqDense`` / ``Conv2D`` via im2col):
  ``||X^T G||_F^2 = sum_{t,t'} (X X^T)_{tt'} (G G^T)_{tt'}``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.dpml.modes import GradMode


class Module(abc.ABC):
    """Base class for all layers.

    Weight layers populate :attr:`grads` (per-batch, summed over
    examples), :attr:`per_example_grads` (mode ``PER_EXAMPLE``) and
    :attr:`sq_norms` (modes ``PER_EXAMPLE`` and ``GHOST_NORM``) during
    :meth:`backward`.
    """

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.per_example_grads: dict[str, np.ndarray] = {}
        self.sq_norms: np.ndarray | None = None

    @property
    def has_params(self) -> bool:
        return bool(self.params)

    def param_count(self) -> int:
        """Total learnable scalars."""
        return sum(p.size for p in self.params.values())

    @abc.abstractmethod
    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        """Compute the layer output, caching what backward needs."""

    @abc.abstractmethod
    def backward(self, grad: np.ndarray,
                 mode: GradMode = GradMode.BATCH) -> np.ndarray:
        """Backpropagate ``grad``; derive weight grads per ``mode``."""

    def zero_grads(self) -> None:
        """Drop all gradient state."""
        self.grads = {}
        self.per_example_grads = {}
        self.sq_norms = None


@dataclass
class LinearKernelGrads:
    """Weight-gradient products of one (X, G) sequence pair."""

    batch_grad: np.ndarray | None = None
    per_example: np.ndarray | None = None
    sq_norms: np.ndarray | None = None


def linear_kernel_grads(x_cols: np.ndarray, g_cols: np.ndarray,
                        mode: GradMode) -> LinearKernelGrads:
    """Weight-gradient derivation shared by all im2col-style kernels.

    ``x_cols``: (B, T, K) inputs; ``g_cols``: (B, T, N) output
    gradients.  ``T == 1`` recovers the plain MLP case; LSTM gate
    matrices reuse this with T = sequence length.
    """
    out = LinearKernelGrads()
    if mode is GradMode.BATCH:
        out.batch_grad = np.einsum("btk,btn->kn", x_cols, g_cols)
    elif mode is GradMode.PER_EXAMPLE:
        per_w = np.einsum("btk,btn->bkn", x_cols, g_cols)
        out.per_example = per_w
        out.batch_grad = per_w.sum(axis=0)
        out.sq_norms = np.einsum("bkn,bkn->b", per_w, per_w)
    elif mode is GradMode.GHOST_NORM:
        # ||X^T G||_F^2 = <X X^T, G G^T> per example — O(B T^2 (K+N))
        # instead of materializing O(B K N) gradients.
        xxt = np.einsum("btk,bsk->bts", x_cols, x_cols)
        ggt = np.einsum("btn,bsn->bts", g_cols, g_cols)
        out.sq_norms = np.einsum("bts,bts->b", xxt, ggt)
    else:  # pragma: no cover - exhaustive enum
        raise AssertionError(f"unhandled mode {mode}")
    return out


def _linear_kernel_backward(
    module: Module,
    x_cols: np.ndarray,
    g_cols: np.ndarray,
    mode: GradMode,
    bias: bool,
) -> None:
    """Store :func:`linear_kernel_grads` results on ``module``."""
    grads = linear_kernel_grads(x_cols, g_cols, mode)
    if grads.batch_grad is not None:
        module.grads["weight"] = grads.batch_grad
    if grads.per_example is not None:
        module.per_example_grads["weight"] = grads.per_example
    sq = grads.sq_norms
    if bias and mode is not GradMode.BATCH:
        per_b = g_cols.sum(axis=1)
        if mode is GradMode.PER_EXAMPLE:
            module.per_example_grads["bias"] = per_b
            module.grads["bias"] = per_b.sum(axis=0)
        sq = sq + np.einsum("bn,bn->b", per_b, per_b)
    elif bias:
        module.grads["bias"] = g_cols.sum(axis=(0, 1))
    if mode is not GradMode.BATCH:
        module.sq_norms = sq


class Dense(Module):
    """Fully connected layer ``y = x W + b`` with x of shape (B, in)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.params["weight"] = rng.normal(
            0.0, scale, size=(in_features, out_features))
        self.bias = bias
        if bias:
            self.params["bias"] = np.zeros(out_features)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if train:
            self._x = x
        y = x @ self.params["weight"]
        if self.bias:
            y = y + self.params["bias"]
        return y

    def backward(self, grad: np.ndarray,
                 mode: GradMode = GradMode.BATCH) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward before forward")
        x_cols = self._x[:, None, :]
        g_cols = grad[:, None, :]
        _linear_kernel_backward(self, x_cols, g_cols, mode, self.bias)
        return grad @ self.params["weight"].T


class SeqDense(Module):
    """Position-wise linear layer over (B, T, in) sequences."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.params["weight"] = rng.normal(
            0.0, scale, size=(in_features, out_features))
        self.bias = bias
        if bias:
            self.params["bias"] = np.zeros(out_features)
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if train:
            self._x = x
        y = x @ self.params["weight"]
        if self.bias:
            y = y + self.params["bias"]
        return y

    def backward(self, grad: np.ndarray,
                 mode: GradMode = GradMode.BATCH) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward before forward")
        _linear_kernel_backward(self, self._x, grad, mode, self.bias)
        return grad @ self.params["weight"].T


def im2col(x: np.ndarray, kernel: int, stride: int,
           padding: int) -> np.ndarray:
    """Unfold (B, C, H, W) into (B, P*Q, C*kernel*kernel) patches."""
    b, c, h, w = x.shape
    p = (h + 2 * padding - kernel) // stride + 1
    q = (w + 2 * padding - kernel) // stride + 1
    if p <= 0 or q <= 0:
        raise ValueError("convolution output collapsed to zero size")
    x_pad = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                       (padding, padding)))
    cols = np.empty((b, c, kernel, kernel, p, q), dtype=x.dtype)
    for i in range(kernel):
        for j in range(kernel):
            cols[:, :, i, j] = x_pad[:, :, i:i + stride * p:stride,
                                     j:j + stride * q:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(b, p * q,
                                                    c * kernel * kernel)


def col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int],
           kernel: int, stride: int, padding: int) -> np.ndarray:
    """Scatter-add the inverse of :func:`im2col`."""
    b, c, h, w = x_shape
    p = (h + 2 * padding - kernel) // stride + 1
    q = (w + 2 * padding - kernel) // stride + 1
    cols = cols.reshape(b, p, q, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    x_pad = np.zeros((b, c, h + 2 * padding, w + 2 * padding),
                     dtype=cols.dtype)
    for i in range(kernel):
        for j in range(kernel):
            x_pad[:, :, i:i + stride * p:stride,
                  j:j + stride * q:stride] += cols[:, :, i, j]
    if padding:
        return x_pad[:, :, padding:-padding, padding:-padding]
    return x_pad


class Conv2D(Module):
    """2D convolution via im2col, with full per-example grad support."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 3,
                 stride: int = 1, padding: int = 1, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        k = in_channels * kernel * kernel
        scale = np.sqrt(2.0 / k)
        self.params["weight"] = rng.normal(0.0, scale,
                                           size=(k, out_channels))
        self.bias = bias
        if bias:
            self.params["bias"] = np.zeros(out_channels)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, int, int, int] | None = None

    def _out_hw(self, h: int, w: int) -> tuple[int, int]:
        p = (h + 2 * self.padding - self.kernel) // self.stride + 1
        q = (w + 2 * self.padding - self.kernel) // self.stride + 1
        return p, q

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        b, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        cols = im2col(x, self.kernel, self.stride, self.padding)
        if train:
            self._cols = cols
            self._x_shape = x.shape
        y = cols @ self.params["weight"]
        if self.bias:
            y = y + self.params["bias"]
        p, q = self._out_hw(h, w)
        return y.transpose(0, 2, 1).reshape(b, self.out_channels, p, q)

    def backward(self, grad: np.ndarray,
                 mode: GradMode = GradMode.BATCH) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward before forward")
        b = grad.shape[0]
        g_cols = grad.reshape(b, self.out_channels, -1).transpose(0, 2, 1)
        _linear_kernel_backward(self, self._cols, g_cols, mode, self.bias)
        dx_cols = g_cols @ self.params["weight"].T
        return col2im(dx_cols, self._x_shape, self.kernel, self.stride,
                      self.padding)


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        mask = x > 0
        if train:
            self._mask = mask
        return x * mask

    def backward(self, grad: np.ndarray,
                 mode: GradMode = GradMode.BATCH) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward")
        return grad * self._mask


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if train:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray,
                 mode: GradMode = GradMode.BATCH) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward before forward")
        return grad.reshape(self._shape)


class AvgPool2D(Module):
    """Average pooling with a square window."""

    def __init__(self, kernel: int = 2, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel
        self._x_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        b, c, h, w = x.shape
        k, s = self.kernel, self.stride
        p = (h - k) // s + 1
        q = (w - k) // s + 1
        if train:
            self._x_shape = x.shape
        out = np.zeros((b, c, p, q), dtype=x.dtype)
        for i in range(k):
            for j in range(k):
                out += x[:, :, i:i + s * p:s, j:j + s * q:s]
        return out / (k * k)

    def backward(self, grad: np.ndarray,
                 mode: GradMode = GradMode.BATCH) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward before forward")
        b, c, h, w = self._x_shape
        k, s = self.kernel, self.stride
        p, q = grad.shape[2], grad.shape[3]
        dx = np.zeros(self._x_shape, dtype=grad.dtype)
        share = grad / (k * k)
        for i in range(k):
            for j in range(k):
                dx[:, :, i:i + s * p:s, j:j + s * q:s] += share
        return dx


class MeanOverTime(Module):
    """Average a (B, T, F) sequence over T — a simple sequence head."""

    def __init__(self) -> None:
        super().__init__()
        self._t: int | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 3:
            raise ValueError(f"expected (B, T, F), got {x.shape}")
        if train:
            self._t = x.shape[1]
        return x.mean(axis=1)

    def backward(self, grad: np.ndarray,
                 mode: GradMode = GradMode.BATCH) -> np.ndarray:
        if self._t is None:
            raise RuntimeError("backward before forward")
        return np.repeat(grad[:, None, :], self._t, axis=1) / self._t


class Sequential:
    """An ordered stack of modules with whole-network backward modes."""

    def __init__(self, layers: list[Module]) -> None:
        self.layers = list(layers)

    @property
    def weight_layers(self) -> list[Module]:
        return [layer for layer in self.layers if layer.has_params]

    def param_count(self) -> int:
        return sum(layer.param_count() for layer in self.weight_layers)

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, train=train)
        return x

    def backward(self, grad: np.ndarray,
                 mode: GradMode = GradMode.BATCH) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad, mode=mode)
        return grad

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def per_example_sq_norms(self) -> np.ndarray:
        """Sum the per-layer squared norms into total per-example norms."""
        totals: np.ndarray | None = None
        for layer in self.weight_layers:
            if layer.sq_norms is None:
                raise RuntimeError(
                    "per-example norms unavailable; run backward with "
                    "PER_EXAMPLE or GHOST_NORM mode first"
                )
            totals = layer.sq_norms if totals is None \
                else totals + layer.sq_norms
        if totals is None:
            raise RuntimeError("network has no weight layers")
        return totals
