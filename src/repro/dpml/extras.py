"""Additional layers: Embedding, LayerNorm, MaxPool2D.

These complete the coverage of the paper's workload families on the
functional side: BERT-style models need embeddings and layer
normalization (whose per-example gradients DP frameworks densify for
norm derivation — the memory behaviour modeled in
:mod:`repro.training.memory`), and CNNs use max pooling.
"""

from __future__ import annotations

import numpy as np

from repro.dpml.layers import Module
from repro.dpml.modes import GradMode


class Embedding(Module):
    """Token-embedding lookup over (B, T) integer inputs.

    The backward pass scatters output gradients into a dense gradient
    table — mirroring how TF-Privacy/Opacus densify per-example
    embedding gradients for clipping (Section III-A's memory story).
    """

    def __init__(self, vocab_size: int, dim: int,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.params["weight"] = rng.normal(0.0, 0.1, size=(vocab_size, dim))
        self.vocab_size = vocab_size
        self.dim = dim
        self._tokens: np.ndarray | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        tokens = np.asarray(x)
        if tokens.ndim != 2:
            raise ValueError(f"expected (B, T) token ids, got {tokens.shape}")
        if tokens.min() < 0 or tokens.max() >= self.vocab_size:
            raise ValueError("token id out of range")
        if train:
            self._tokens = tokens
        return self.params["weight"][tokens]

    def backward(self, grad: np.ndarray,
                 mode: GradMode = GradMode.BATCH) -> np.ndarray:
        if self._tokens is None:
            raise RuntimeError("backward before forward")
        tokens = self._tokens
        batch = tokens.shape[0]
        if mode is GradMode.BATCH:
            table = np.zeros_like(self.params["weight"])
            np.add.at(table, tokens.reshape(-1),
                      grad.reshape(-1, self.dim))
            self.grads["weight"] = table
        else:
            per_ex = np.zeros((batch,) + self.params["weight"].shape)
            for b in range(batch):
                np.add.at(per_ex[b], tokens[b], grad[b])
            sq = np.einsum("bvd,bvd->b", per_ex, per_ex)
            if mode is GradMode.PER_EXAMPLE:
                self.per_example_grads["weight"] = per_ex
                self.grads["weight"] = per_ex.sum(axis=0)
            self.sq_norms = sq
        # Token ids carry no gradient.
        return np.zeros(tokens.shape + (1,))


class LayerNorm(Module):
    """Layer normalization over the last axis, with affine parameters."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.params["gamma"] = np.ones(dim)
        self.params["beta"] = np.zeros(dim)
        self.dim = dim
        self.eps = eps
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mean) / np.sqrt(var + self.eps)
        if train:
            self._cache = (normed, np.sqrt(var + self.eps))
        return normed * self.params["gamma"] + self.params["beta"]

    def backward(self, grad: np.ndarray,
                 mode: GradMode = GradMode.BATCH) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        normed, std = self._cache
        # Reduce every axis except batch (0) and features (-1).
        reduce_axes = tuple(range(1, grad.ndim - 1))
        per_gamma = (grad * normed).sum(axis=reduce_axes) \
            if reduce_axes else grad * normed
        per_beta = grad.sum(axis=reduce_axes) if reduce_axes else grad
        if mode is GradMode.BATCH:
            self.grads["gamma"] = per_gamma.sum(axis=0)
            self.grads["beta"] = per_beta.sum(axis=0)
        else:
            sq = (np.einsum("bd,bd->b", per_gamma, per_gamma)
                  + np.einsum("bd,bd->b", per_beta, per_beta))
            if mode is GradMode.PER_EXAMPLE:
                self.per_example_grads["gamma"] = per_gamma
                self.per_example_grads["beta"] = per_beta
                self.grads["gamma"] = per_gamma.sum(axis=0)
                self.grads["beta"] = per_beta.sum(axis=0)
            self.sq_norms = sq
        # Gradient through the normalization itself.
        g = grad * self.params["gamma"]
        n = self.dim
        dx = (g - g.mean(axis=-1, keepdims=True)
              - normed * (g * normed).mean(axis=-1, keepdims=True)) / std
        return dx


class MaxPool2D(Module):
    """Max pooling with a square window over (B, C, H, W)."""

    def __init__(self, kernel: int = 2, stride: int | None = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride or kernel
        self._cache: tuple[np.ndarray, tuple[int, ...]] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        b, c, h, w = x.shape
        k, s = self.kernel, self.stride
        p = (h - k) // s + 1
        q = (w - k) // s + 1
        windows = np.empty((b, c, p, q, k * k), dtype=x.dtype)
        for i in range(k):
            for j in range(k):
                windows[..., i * k + j] = x[:, :, i:i + s * p:s,
                                            j:j + s * q:s]
        argmax = windows.argmax(axis=-1)
        if train:
            self._cache = (argmax, x.shape)
        return windows.max(axis=-1)

    def backward(self, grad: np.ndarray,
                 mode: GradMode = GradMode.BATCH) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        argmax, x_shape = self._cache
        b, c, h, w = x_shape
        k, s = self.kernel, self.stride
        p, q = grad.shape[2], grad.shape[3]
        dx = np.zeros(x_shape, dtype=grad.dtype)
        for i in range(k):
            for j in range(k):
                mask = argmax == (i * k + j)
                dx[:, :, i:i + s * p:s, j:j + s * q:s] += grad * mask
        return dx
