"""Functional NumPy DP-SGD substrate (Algorithm 1) with RDP accounting."""

from repro.dpml.accountant import (
    DEFAULT_ORDERS,
    RdpAccountant,
    compute_rdp,
    epsilon_for_steps,
    max_steps_for_budget,
    noise_multiplier_for_epsilon,
    rdp_sampled_gaussian,
    rdp_to_epsilon,
)
from repro.dpml.data import (
    Dataset,
    synthetic_classification,
    synthetic_images,
    synthetic_sequences,
)
from repro.dpml.dpsgd import (
    DpSgdOptimizer,
    PrivacyParams,
    StepResult,
    clip_scales,
)
from repro.dpml.extras import Embedding, LayerNorm, MaxPool2D
from repro.dpml.microbatch import MicrobatchDpSgdOptimizer
from repro.dpml.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Flatten,
    MeanOverTime,
    Module,
    ReLU,
    SeqDense,
    Sequential,
    col2im,
    im2col,
)
from repro.dpml.loss import accuracy, softmax, softmax_cross_entropy
from repro.dpml.modes import GradMode
from repro.dpml.recurrent import LSTM
from repro.dpml.train import TrainingHistory, evaluate, train_dpsgd

__all__ = [
    "GradMode",
    "Module",
    "Dense",
    "SeqDense",
    "Conv2D",
    "ReLU",
    "Flatten",
    "AvgPool2D",
    "MaxPool2D",
    "MeanOverTime",
    "LSTM",
    "Embedding",
    "LayerNorm",
    "Sequential",
    "im2col",
    "col2im",
    "softmax",
    "softmax_cross_entropy",
    "accuracy",
    "PrivacyParams",
    "DpSgdOptimizer",
    "MicrobatchDpSgdOptimizer",
    "StepResult",
    "clip_scales",
    "RdpAccountant",
    "compute_rdp",
    "rdp_sampled_gaussian",
    "rdp_to_epsilon",
    "epsilon_for_steps",
    "max_steps_for_budget",
    "noise_multiplier_for_epsilon",
    "DEFAULT_ORDERS",
    "Dataset",
    "synthetic_classification",
    "synthetic_images",
    "synthetic_sequences",
    "TrainingHistory",
    "train_dpsgd",
    "evaluate",
]
