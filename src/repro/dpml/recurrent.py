"""LSTM layer with per-example gradient and ghost-norm support.

The paper's RNN benchmarks (LSTM-small/large, after the Opacus
char-LSTM example) hinge on DP-SGD for recurrent layers.  An LSTM layer
owns two weight matrices — input-hidden ``W_ih`` (I x 4H) and
hidden-hidden ``W_hh`` (H x 4H) — whose weight gradients are exactly
the "time-series MLP" products of Figure 6: sums over timesteps of
outer products between the (cached) inputs and the gate pre-activation
gradients.  That lets per-example gradients and ghost norms reuse the
same sequence kernel as :class:`~repro.dpml.layers.SeqDense`.
"""

from __future__ import annotations

import numpy as np

from repro.dpml.layers import Module, linear_kernel_grads
from repro.dpml.modes import GradMode


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


class LSTM(Module):
    """A single-layer LSTM over (B, T, input) sequences.

    Returns the full hidden-state sequence (B, T, hidden).  Gates are
    ordered (input, forget, cell, output) along the 4H axis.
    """

    def __init__(self, input_size: int, hidden_size: int, bias: bool = True,
                 rng: np.random.Generator | None = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        scale = 1.0 / np.sqrt(hidden_size)
        self.params["weight_ih"] = rng.uniform(
            -scale, scale, size=(input_size, 4 * hidden_size))
        self.params["weight_hh"] = rng.uniform(
            -scale, scale, size=(hidden_size, 4 * hidden_size))
        self.bias = bias
        if bias:
            self.params["bias"] = np.zeros(4 * hidden_size)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self._cache: dict[str, np.ndarray] | None = None

    def forward(self, x: np.ndarray, train: bool = True) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(
                f"expected (B, T, {self.input_size}), got {x.shape}")
        batch, seq_len, _ = x.shape
        hidden = self.hidden_size
        w_ih = self.params["weight_ih"]
        w_hh = self.params["weight_hh"]
        bias = self.params["bias"] if self.bias else 0.0

        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        h_seq = np.zeros((batch, seq_len, hidden))
        cache = {
            "x": x,
            "h_prev": np.zeros((batch, seq_len, hidden)),
            "c_prev": np.zeros((batch, seq_len, hidden)),
            "i": np.zeros((batch, seq_len, hidden)),
            "f": np.zeros((batch, seq_len, hidden)),
            "g": np.zeros((batch, seq_len, hidden)),
            "o": np.zeros((batch, seq_len, hidden)),
            "c": np.zeros((batch, seq_len, hidden)),
        }
        for t in range(seq_len):
            cache["h_prev"][:, t] = h
            cache["c_prev"][:, t] = c
            z = x[:, t] @ w_ih + h @ w_hh + bias
            i = _sigmoid(z[:, :hidden])
            f = _sigmoid(z[:, hidden:2 * hidden])
            g = np.tanh(z[:, 2 * hidden:3 * hidden])
            o = _sigmoid(z[:, 3 * hidden:])
            c = f * c + i * g
            h = o * np.tanh(c)
            h_seq[:, t] = h
            for name, value in (("i", i), ("f", f), ("g", g), ("o", o),
                                ("c", c)):
                cache[name][:, t] = value
        if train:
            self._cache = cache
        return h_seq

    def backward(self, grad: np.ndarray,
                 mode: GradMode = GradMode.BATCH) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward before forward")
        cache = self._cache
        x = cache["x"]
        batch, seq_len, _ = x.shape
        hidden = self.hidden_size
        w_ih = self.params["weight_ih"]
        w_hh = self.params["weight_hh"]

        dz_seq = np.zeros((batch, seq_len, 4 * hidden))
        dx = np.zeros_like(x)
        dh_next = np.zeros((batch, hidden))
        dc_next = np.zeros((batch, hidden))
        for t in range(seq_len - 1, -1, -1):
            i = cache["i"][:, t]
            f = cache["f"][:, t]
            g = cache["g"][:, t]
            o = cache["o"][:, t]
            c = cache["c"][:, t]
            c_prev = cache["c_prev"][:, t]
            tanh_c = np.tanh(c)

            dh = grad[:, t] + dh_next
            dc = dc_next + dh * o * (1.0 - tanh_c**2)
            do = dh * tanh_c
            di = dc * g
            df = dc * c_prev
            dg = dc * i
            dz = np.concatenate([
                di * i * (1.0 - i),
                df * f * (1.0 - f),
                dg * (1.0 - g**2),
                do * o * (1.0 - o),
            ], axis=1)
            dz_seq[:, t] = dz
            dx[:, t] = dz @ w_ih.T
            dh_next = dz @ w_hh.T
            dc_next = dc * f

        # Both weight matrices are Figure 6 time-series products:
        # W_ih pairs the input sequence with dz; W_hh pairs h_{t-1}.
        ih = linear_kernel_grads(x, dz_seq, mode)
        hh = linear_kernel_grads(cache["h_prev"], dz_seq, mode)
        sq = None
        if ih.batch_grad is not None:
            self.grads["weight_ih"] = ih.batch_grad
            self.grads["weight_hh"] = hh.batch_grad
        if ih.per_example is not None:
            self.per_example_grads["weight_ih"] = ih.per_example
            self.per_example_grads["weight_hh"] = hh.per_example
        if ih.sq_norms is not None:
            sq = ih.sq_norms + hh.sq_norms
        if self.bias:
            per_b = dz_seq.sum(axis=1)
            if mode is GradMode.BATCH:
                self.grads["bias"] = per_b.sum(axis=0)
            else:
                if mode is GradMode.PER_EXAMPLE:
                    self.per_example_grads["bias"] = per_b
                    self.grads["bias"] = per_b.sum(axis=0)
                sq = sq + np.einsum("bn,bn->b", per_b, per_b)
        if mode is not GradMode.BATCH:
            self.sq_norms = sq
        return dx
