"""Gradient-derivation modes for the functional DP-SGD substrate.

Algorithm 1 distinguishes three ways a backward pass may treat weight
gradients; every :class:`repro.dpml.layers.Module` implements all three.
"""

from __future__ import annotations

import enum


class GradMode(enum.Enum):
    """What a backward pass derives for each weight layer."""

    #: Standard SGD: one per-batch gradient per layer (the sum over
    #: examples).
    BATCH = "batch"
    #: Plain DP-SGD: materialize all ``B`` per-example gradients
    #: (Algorithm 1, line 19).
    PER_EXAMPLE = "per_example"
    #: DP-SGD(R) first pass: derive only the per-example squared
    #: gradient norms, via the "ghost norm" identities, without
    #: materializing the gradients (Algorithm 1, line 31).
    GHOST_NORM = "ghost_norm"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
