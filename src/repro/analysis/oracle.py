"""R005: oracle-guard — closed-form engines keep the scalar path alive.

An engine that sets :attr:`GemmEngine.grid_axes` opts into the batched
closed-form evaluator, which is only trustworthy while the per-tile
scalar reference stays implemented (it is the oracle every fast path is
pinned against, and the fallback for shapes the closed form rejects).
For every class assigning a non-``None`` ``grid_axes`` this rule
requires *real* implementations — in the class body or inherited from a
project base — of both method families:

* the scalar reference trio ``tiles`` / ``tile_cycle_phases`` /
  ``tile_sram_traffic``;
* the closed-form quartet ``tile_grid`` / ``grid_tile_dims`` /
  ``tile_phases_batch`` / ``tile_traffic_batch``.

A method is *not* an implementation when it is ``@abstractmethod``,
only raises ``NotImplementedError``, or only ``return None`` (the
base-class "no closed form" stub).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Project, Rule, register

#: Scalar reference path every closed-form engine must keep reachable.
REFERENCE_METHODS = ("tiles", "tile_cycle_phases", "tile_sram_traffic")

#: Closed-form hooks grid_axes declares support for.
CLOSED_FORM_METHODS = ("tile_grid", "grid_tile_dims",
                       "tile_phases_batch", "tile_traffic_batch")


def _grid_axes_value(node: ast.ClassDef) -> tuple[ast.stmt, bool] | None:
    """(assignment stmt, is_non_none) for a ``grid_axes`` class attr."""
    for stmt in node.body:
        target = None
        value = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value = stmt.target, stmt.value
        if isinstance(target, ast.Name) and target.id == "grid_axes":
            is_none = (isinstance(value, ast.Constant)
                       and value.value is None)
            return stmt, not is_none and value is not None
    return None


def _is_stub(node: ast.FunctionDef) -> bool:
    """True for abstract/raise-only/return-None-only method bodies."""
    for dec in node.decorator_list:
        name = dec.attr if isinstance(dec, ast.Attribute) else (
            dec.id if isinstance(dec, ast.Name) else None)
        if name in ("abstractmethod", "abstractproperty"):
            return True
    body = list(node.body)
    if body and isinstance(body[0], ast.Expr) \
            and isinstance(body[0].value, ast.Constant) \
            and isinstance(body[0].value.value, str):
        body = body[1:]  # docstring
    if not body:
        return True
    if len(body) == 1:
        stmt = body[0]
        if isinstance(stmt, ast.Pass):
            return True
        if isinstance(stmt, ast.Raise):
            exc = stmt.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) \
                    and exc.id == "NotImplementedError":
                return True
        if isinstance(stmt, ast.Return) and (
                stmt.value is None
                or (isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is None)):
            return True
    return False


@register
class OracleGuardRule(Rule):
    """Closed-form engines must keep scalar fallback + hooks implemented."""

    rule_id = "R005"
    title = "oracle-guard (scalar fallback reachable)"

    def check(self, project: Project) -> Iterator[Finding]:
        classes = {node.name: node
                   for _, node in project.iter_classes()}
        for module, node in project.iter_classes():
            info = _grid_axes_value(node)
            if info is None or not info[1]:
                continue
            implemented = self._implemented_methods(node, classes)
            for family, methods in (
                    ("scalar reference", REFERENCE_METHODS),
                    ("closed-form hook", CLOSED_FORM_METHODS)):
                for method in methods:
                    if method in implemented:
                        continue
                    yield Finding(
                        rule_id=self.rule_id, path=module.rel,
                        line=node.lineno,
                        message=f"engine '{node.name}' declares "
                                f"grid_axes but has no real {family} "
                                f"implementation of '{method}'",
                        hint="implement it (a stub that raises or "
                             "returns None does not keep the oracle "
                             "path reachable), or drop grid_axes")

    def _implemented_methods(
        self, node: ast.ClassDef, classes: dict[str, ast.ClassDef],
    ) -> set[str]:
        implemented: set[str] = set()
        seen: set[str] = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            for stmt in current.body:
                if isinstance(stmt, ast.FunctionDef) \
                        and not _is_stub(stmt):
                    implemented.add(stmt.name)
            for base in current.bases:
                base_name = base.attr if isinstance(base, ast.Attribute) \
                    else (base.id if isinstance(base, ast.Name) else None)
                if base_name in classes:
                    stack.append(classes[base_name])
        return implemented
