"""R001: units-of-measure consistency from the name-suffix convention.

The repo encodes physical units in names — ``*_cycles``, ``*_seconds``
(or ``*_s``), ``*_bytes``, ``*_eps``, ``*_hz`` — and every cycle
accounting bug we have shipped mixed two of them.  This rule infers a
unit for every expression it can and flags the cases where two *known*
units disagree:

* ``a_cycles + b_seconds`` (also ``-``, comparisons, ``max``/``min``);
* a unit-suffixed assignment target fed a different known unit;
* a ``return`` whose unit contradicts the function's name suffix;
* a call keyword like ``cycles=...`` fed a different known unit.

Names with no recognized suffix (or containing ``_per_`` — compound
units such as ``bytes_per_cycle``) are *unknown* and never flagged, so
the rule has no opinion about most arithmetic.  The algebra knows the
two conversions the codebase uses: ``cycles / hz -> seconds`` and
``seconds * hz -> cycles``; dividing two like units yields a unitless
ratio.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Module, Project, Rule, register

#: Name suffixes mapped to units, longest first so ``_seconds`` wins
#: over ``_s``.
_SUFFIXES: tuple[tuple[str, str], ...] = (
    ("_cycles", "cycles"),
    ("_seconds", "seconds"),
    ("_bytes", "bytes"),
    ("_eps", "eps"),
    ("_hz", "hz"),
    ("_s", "seconds"),
)

#: Bare names that *are* a unit-suffixed quantity.
_EXACT = {"cycles": "cycles", "seconds": "seconds", "bytes": "bytes",
          "eps": "eps"}

#: Call targets transparent to units (unit of their first argument).
_PASSTHROUGH = {"int", "float", "round", "abs", "ceil", "floor",
                "asarray", "array"}

#: Call targets requiring *matching* units across arguments.
_HOMOGENEOUS = {"max", "min", "maximum", "minimum", "sum", "where"}


def unit_of_name(name: str) -> str | None:
    """The unit a name's suffix declares, or None (unknown)."""
    base = name.lower()
    for batch_suffix in ("_batched", "_batch"):
        if base.endswith(batch_suffix):
            base = base[: -len(batch_suffix)]
            break
    if "_per_" in base or base.endswith("_per"):
        return None  # compound unit (e.g. bytes_per_cycle): no opinion
    if base in _EXACT:
        return _EXACT[base]
    for suffix, unit in _SUFFIXES:
        if base.endswith(suffix):
            return unit
    return None


def _callee_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class _UnitChecker:
    """Per-module walker; collects mismatch findings."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.findings: list[Finding] = []

    # -- unit inference ----------------------------------------------------

    def unit_of(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return unit_of_name(node.id)
        if isinstance(node, ast.Attribute):
            return unit_of_name(node.attr)
        if isinstance(node, ast.Subscript):
            return self.unit_of(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.unit_of(node.operand)
        if isinstance(node, ast.IfExp):
            body, orelse = self.unit_of(node.body), self.unit_of(node.orelse)
            return body if body == orelse else None
        if isinstance(node, ast.Call):
            return self._unit_of_call(node)
        if isinstance(node, ast.BinOp):
            return self._unit_of_binop(node)
        return None

    def _unit_of_call(self, node: ast.Call) -> str | None:
        name = _callee_name(node.func)
        if name is None:
            return None
        if name in _PASSTHROUGH and node.args:
            return self.unit_of(node.args[0])
        if name in _HOMOGENEOUS and node.args:
            units = {self.unit_of(arg) for arg in node.args}
            units.discard(None)
            if len(units) > 1:
                self._flag(node, f"{name}() mixes units {sorted(units)}",
                           "reduce over one unit; convert operands first")
                return None
            return next(iter(units), None)
        return unit_of_name(name)

    def _unit_of_binop(self, node: ast.BinOp) -> str | None:
        left, right = self.unit_of(node.left), self.unit_of(node.right)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)):
            if left and right and left != right:
                self._flag(node, f"arithmetic mixes {left} and {right}",
                           "convert one operand (cycles/hz -> seconds; "
                           "seconds*hz -> cycles) before combining")
                return None
            return left or right
        if isinstance(node.op, ast.Mult):
            pair = {left, right}
            if pair == {"seconds", "hz"}:
                return "cycles"
            if left and right:
                return None  # unit*unit we don't model (e.g. bytes*bytes)
            return left or right  # scaling by a dimensionless factor
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left == "cycles" and right == "hz":
                return "seconds"
            # Any other divisor may itself carry units (bandwidths,
            # utilizations, ...), so the quotient's unit is unknown.
            return None
        if isinstance(node.op, ast.Mod):
            if left and right and left != right:
                self._flag(node, f"modulo mixes {left} and {right}",
                           "operands of % must share a unit")
                return None
            return left or right
        return None

    # -- checks ------------------------------------------------------------

    def _flag(self, node: ast.AST, message: str, hint: str) -> None:
        self.findings.append(Finding(
            rule_id=UnitsRule.rule_id, path=self.module.rel,
            line=getattr(node, "lineno", 1), message=message, hint=hint))

    def _check_target(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, (ast.Name, ast.Attribute)):
            name = target.id if isinstance(target, ast.Name) else target.attr
            declared = unit_of_name(name)
            actual = self.unit_of(value)
            if declared and actual and declared != actual:
                self._flag(
                    target,
                    f"'{name}' is {declared} but is assigned {actual}",
                    f"rename '{name}' or convert the value to {declared}")

    def check_module(self) -> None:
        self._walk(self.module.tree, func_unit=None)

    def _walk(self, node: ast.AST, func_unit: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(child, unit_of_name(child.name))
                continue
            if isinstance(child, ast.Return) and child.value is not None:
                actual = self.unit_of(child.value)
                if func_unit and actual and actual != func_unit:
                    self._flag(
                        child,
                        f"function declares {func_unit} but returns "
                        f"{actual}",
                        f"convert the return value to {func_unit} or "
                        "rename the function")
            elif isinstance(child, ast.Assign):
                for target in child.targets:
                    self._check_target(target, child.value)
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                self._check_target(child.target, child.value)
            elif isinstance(child, ast.AugAssign) and isinstance(
                    child.op, (ast.Add, ast.Sub)):
                self._check_target(child.target, child.value)
            elif isinstance(child, ast.Compare):
                units = [self.unit_of(child.left)]
                units += [self.unit_of(cmp) for cmp in child.comparators]
                known = {unit for unit in units if unit}
                if len(known) > 1:
                    self._flag(child,
                               f"comparison mixes units {sorted(known)}",
                               "compare like with like; convert first")
            elif isinstance(child, ast.BinOp):
                self.unit_of(child)  # flags Add/Sub/Mod mixes
            elif isinstance(child, ast.Call):
                self.unit_of(child)  # flags homogeneous-call mixes
                for keyword in child.keywords:
                    if keyword.arg is None:
                        continue
                    declared = unit_of_name(keyword.arg)
                    actual = self.unit_of(keyword.value)
                    if declared and actual and declared != actual:
                        self._flag(
                            keyword.value,
                            f"argument '{keyword.arg}' is {declared} but "
                            f"receives {actual}",
                            f"convert the value to {declared}")
            if not isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                self._walk(child, func_unit)


@register
class UnitsRule(Rule):
    """Flag arithmetic mixing the repo's unit-suffix conventions."""

    rule_id = "R001"
    title = "units-of-measure consistency"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            checker = _UnitChecker(module)
            checker.check_module()
            # An expression can be evaluated from several contexts
            # (assignment check + recursive walk); report each site once.
            yield from dict.fromkeys(checker.findings)
