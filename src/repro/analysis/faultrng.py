"""R008: fault-path RNG isolation — keyed draws only near faults.

The fault injector (:mod:`repro.serve.faults`) promises that the
scalar and streaming fleet simulators make *identical* failure
decisions even though they visit jobs in different internal orders.
That only holds because every stochastic choice is a pure keyed hash
of ``(seed, job_id, attempt, stream)`` — there is no generator object
whose output depends on how many draws happened before.

A single stateful RNG call anywhere on the fault path silently breaks
that contract: the two simulators would consume the stream in
different orders and diverge.  This rule therefore bans *all* RNG
machinery — not just the unseeded kind R004 already flags — from any
module that imports :mod:`repro.serve.faults` (and from ``faults.py``
itself):

* ``np.random.<anything>`` — including seeded ``default_rng(...)`` /
  ``Generator`` construction, which R004 permits elsewhere;
* stdlib ``random.<fn>`` calls and ``random.Random(...)``
  construction, seeded or not;
* bare ``default_rng(...)`` imported from ``numpy.random``.

Trace *generation* (:mod:`repro.serve.job`) rightly uses a seeded
``default_rng`` — it runs once, before either simulator — and stays
legal because it does not import the faults module.  Test files are
not linted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Module, Project, Rule, register

#: The module whose importers are held to keyed-draw discipline.
_FAULTS_MODULE = "repro.serve.faults"

_HINT = ("derive the value from a keyed hash instead "
         "(repro.serve.faults._keyed_uniform) so both simulators "
         "draw it identically regardless of call order")


def _dotted(node: ast.expr) -> list[str]:
    """Attribute chain as names, e.g. ``np.random.rand`` -> [np,random,rand]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _on_fault_path(module: Module) -> bool:
    """True for ``faults.py`` itself and any module importing it."""
    if module.rel.replace("\\", "/").endswith("repro/serve/faults.py"):
        return True
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            if any(alias.name == _FAULTS_MODULE for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module == _FAULTS_MODULE:
                return True
            # from repro.serve import faults
            if node.module == "repro.serve" and any(
                    alias.name == "faults" for alias in node.names):
                return True
    return False


@register
class FaultPathRNGRule(Rule):
    """Flag any RNG use in modules on the fault path."""

    rule_id = "R008"
    title = "fault-path RNG isolation (keyed draws only)"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not _on_fault_path(module):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                message = self._check_call(_dotted(node.func))
                if message is not None:
                    yield Finding(
                        rule_id=self.rule_id, path=module.rel,
                        line=node.lineno, message=message, hint=_HINT)

    def _check_call(self, chain: list[str]) -> str | None:
        if not chain:
            return None
        name = ".".join(chain)
        if len(chain) >= 2 and chain[0] in ("np", "numpy") \
                and chain[1] == "random":
            return (f"'{name}' on the fault path: stateful RNG breaks "
                    "scalar/streaming decision-identity")
        if len(chain) == 2 and chain[0] == "random":
            return (f"'{name}' on the fault path: stateful RNG breaks "
                    "scalar/streaming decision-identity")
        if chain == ["default_rng"]:
            return ("'default_rng' on the fault path: stateful RNG "
                    "breaks scalar/streaming decision-identity")
        return None
