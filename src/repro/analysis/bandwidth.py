"""R007: link-rate homing — raw link bandwidth/latency literals live in
``arch/interconnect.py``.

The interconnect model (and now the heterogeneous :class:`Fabric`
presets) is the single source of truth for every link rate the
simulators charge: ``DEFAULT_LINK_BANDWIDTH_BYTES_PER_S``,
``DEFAULT_LINK_LATENCY_S`` and the named :data:`~repro.arch.
interconnect.FABRICS`.  A ``100e9`` scribbled into a call site or a
keyword default silently forks that truth — the scalar and batched
engines drift apart, and a fabric preset change no longer reaches
every consumer.

The rule flags a *numeric literal* (including ``100e9``-style
expressions built only from constants) wherever it is bound to a
link-rate name:

* an assignment to a name containing ``bandwidth`` or ``latency``;
* a keyword argument by one of those names at a call site;
* a function-parameter default for one of those names.

Memory-system rates are a different subsystem with their own paper
tables, so names mentioning ``dram``/``sram``/``mem`` are exempt, as
are the sanctioned homes: ``arch/interconnect.py`` itself plus the
DRAM/SRAM models (``arch/memory.py``, ``arch/gpu.py``,
``arch/bandwidth.py``) and the Table-1 bandwidth experiment.  Test
files are not linted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Module, Project, Rule, register

#: The single sanctioned home of link-rate constants.
_ALLOWED_FILES = (
    "src/repro/arch/interconnect.py",
    # Memory-system rates (DRAM / SRAM) are a separate subsystem.
    "src/repro/arch/memory.py",
    "src/repro/arch/gpu.py",
    "src/repro/arch/bandwidth.py",
    "src/repro/experiments/table1_bandwidth.py",
)

#: Name fragments that mark a binding as a link rate.
_RATE_FRAGMENTS = ("bandwidth", "latency")

#: Name fragments that mark a rate as a memory-system one (exempt).
_MEMORY_FRAGMENTS = ("dram", "sram", "mem")


def _is_rate_name(name: str) -> bool:
    lowered = name.lower()
    if any(fragment in lowered for fragment in _MEMORY_FRAGMENTS):
        return False
    return any(fragment in lowered for fragment in _RATE_FRAGMENTS)


def _is_numeric_literal(node: ast.expr | None) -> bool:
    """True for a number or an expression built only from numbers.

    Catches ``100e9``, ``-5e-6``, ``25 * 2**30`` — anything that bakes
    a concrete rate into the source instead of naming a constant.
    """
    if node is None:
        return False
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp):
        return _is_numeric_literal(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_numeric_literal(node.left) \
            and _is_numeric_literal(node.right)
    return False


@register
class BandwidthHomingRule(Rule):
    """Flag raw link-rate literals outside ``arch/interconnect.py``."""

    rule_id = "R007"
    title = "link-rate homing (raw bandwidth/latency literals live in " \
            "arch.interconnect)"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if module.rel in _ALLOWED_FILES:
                continue
            for node in ast.walk(module.tree):
                yield from self._check_node(module, node)

    def _check_node(
            self, module: Module, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) \
                        and _is_rate_name(target.id) \
                        and _is_numeric_literal(node.value):
                    yield self._finding(module, node.lineno, target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) \
                    and _is_rate_name(node.target.id) \
                    and _is_numeric_literal(node.value):
                yield self._finding(module, node.lineno, node.target.id)
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg is not None \
                        and _is_rate_name(keyword.arg) \
                        and _is_numeric_literal(keyword.value):
                    yield self._finding(
                        module, keyword.value.lineno, keyword.arg)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield from self._check_defaults(module, node)

    def _check_defaults(
            self, module: Module,
            node: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> Iterator[Finding]:
        positional = node.args.posonlyargs + node.args.args
        defaults: list[tuple[ast.arg, ast.expr | None]] = list(
            zip(positional[len(positional) - len(node.args.defaults):],
                node.args.defaults))
        defaults += list(zip(node.args.kwonlyargs, node.args.kw_defaults))
        for arg, default in defaults:
            if _is_rate_name(arg.arg) and _is_numeric_literal(default):
                assert default is not None
                yield self._finding(module, default.lineno, arg.arg)

    def _finding(self, module: Module, line: int, name: str) -> Finding:
        return Finding(
            rule_id=self.rule_id, path=module.rel, line=line,
            message=f"raw link-rate literal bound to {name!r} outside "
                    f"arch.interconnect",
            hint="name the rate in repro.arch.interconnect (DEFAULT_* "
                 "constants or a Fabric preset) and import it; literal "
                 "rates fork the single source of truth the scalar and "
                 "batched engines share")
