"""R006: wall-clock isolation — host-clock reads only in ``repro.obs``.

The simulators deal exclusively in *simulated* time: every latency,
wait and makespan is derived from the closed-form model, so reruns are
bit-identical and results never depend on the speed of the machine
that produced them.  A stray ``time.time()`` or ``time.perf_counter()``
in model code silently breaks that promise (and poisons cache keys and
golden outputs with host-dependent values).

Host-clock reads are therefore quarantined to the sanctioned homes:

* ``src/repro/obs/`` — the self-profiling layer
  (:mod:`repro.obs.profile`) exists precisely to measure the harness's
  own wall-clock cost;
* ``src/repro/experiments/run_all.py`` — the top-level driver, which
  timestamps its artifact manifest.

Everywhere else under ``src/repro``, calls to ``time.time``,
``time.perf_counter`` (and ``_ns`` variants), ``time.monotonic``,
``time.process_time``, ``time.thread_time`` and
``datetime.datetime.now`` / ``utcnow`` / ``today`` are flagged —
whether spelled through the module (``time.monotonic()``) or imported
bare (``from time import perf_counter``).  ``time.sleep`` is not a
clock *read* and is left alone.  Test files are not linted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Module, Project, Rule, register

#: ``time`` module attributes that read the host clock.
_TIME_CLOCKS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time", "process_time_ns", "thread_time",
    "thread_time_ns", "clock_gettime", "clock_gettime_ns",
}

#: ``datetime.datetime`` constructors that read the host clock.
_DATETIME_CLOCKS = {"now", "utcnow", "today"}

#: Path prefixes / files where host-clock reads are sanctioned.
_ALLOWED_PREFIXES = ("src/repro/obs/",)
_ALLOWED_FILES = ("src/repro/experiments/run_all.py",)


def _dotted(node: ast.expr) -> list[str]:
    """Attribute chain as names, e.g. ``time.perf_counter`` -> [time, perf_counter]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _allowed(rel: str) -> bool:
    return rel in _ALLOWED_FILES \
        or any(rel.startswith(prefix) for prefix in _ALLOWED_PREFIXES)


def _bare_clock_imports(module: Module) -> set[str]:
    """Names bound by ``from time import <clock>`` (including aliases)."""
    names: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_CLOCKS:
                    names.add(alias.asname or alias.name)
    return names


@register
class WalltimeRule(Rule):
    """Flag host-clock reads outside the observability layer."""

    rule_id = "R006"
    title = "wall-clock isolation (host clocks live in repro.obs)"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if _allowed(module.rel):
                continue
            bare = _bare_clock_imports(module)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = self._clock_name(node, bare)
                if name is None:
                    continue
                yield Finding(
                    rule_id=self.rule_id, path=module.rel,
                    line=node.lineno,
                    message=f"host-clock read '{name}' outside repro.obs",
                    hint="simulators must use simulated time only; "
                         "wall-clock profiling belongs in "
                         "repro.obs.Profiler (or pass timings in)")

    def _clock_name(self, node: ast.Call, bare: set[str]) -> str | None:
        chain = _dotted(node.func)
        if not chain:
            return None
        if len(chain) == 2 and chain[0] == "time" \
                and chain[1] in _TIME_CLOCKS:
            return ".".join(chain)
        # from time import perf_counter [as pc]; pc()
        if len(chain) == 1 and chain[0] in bare:
            return chain[0]
        # datetime.now() / datetime.datetime.utcnow() / date.today()
        if len(chain) >= 2 and chain[-1] in _DATETIME_CLOCKS \
                and chain[-2] in ("datetime", "date"):
            return ".".join(chain)
        return None
