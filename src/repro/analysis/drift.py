"""R003: scalar <-> batched API drift.

The repo's performance model is dual-path: every batched NumPy
evaluator (``*_batch`` / ``*_batched``) is pinned value-identical to a
scalar oracle.  The pin only holds while the two signatures mean the
same thing, so this rule pairs each public batched function with its
scalar twin and flags:

* a scalar parameter with no batched counterpart (same name, or the
  pluralized form — ``overlap`` -> ``overlaps``);
* a batched function whose name never appears in ``tests/`` (no pinned
  equivalence test).

Twins are found by stripping the ``_batch``/``_batched`` suffix (with
depluralization, so ``evaluate_points_batched`` matches
``evaluate_point``) or through :data:`TWIN_OVERRIDES` for historically
named pairs.  Batched functions with no twin anywhere are out of scope.
Parameters that *carry* packed scalar arguments — ``self``, model
objects like ``engine``/``cluster``/``job``, or a work-tuple list like
``points``/``specs`` — are exempt from one-to-one matching; the
cache-key rule (R002) checks tuple packing instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Module, Project, Rule, register

#: Batched name -> scalar twin, for pairs the stem heuristic misses.
TWIN_OVERRIDES = {
    "training_step_batch": "simulate_training_step",
    "sharded_step_batch": "simulate_sharded_training_step",
}

#: Parameters exempt from one-to-one matching: object carriers whose
#: fields replace several scalar arguments, and plumbing knobs.
CARRIER_PARAMS = {
    "self", "cls", "engine", "accel", "accelerator", "network",
    "cluster", "fleet", "job", "trace", "gemm", "tile", "cache",
    "config", "rng",
}

#: Batched parameters that pack whole scalar-argument tuples.
PACKED_PARAMS = {"points", "items", "specs", "work", "jobs"}


def _params(node: ast.FunctionDef) -> list[str]:
    args = node.args
    return [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]


def _plural_forms(name: str) -> set[str]:
    forms = {name, name + "s", name + "es"}
    if name.endswith("y"):
        forms.add(name[:-1] + "ies")
    return forms


def _singular_forms(name: str) -> set[str]:
    forms = {name}
    if name.endswith("ies"):
        forms.add(name[:-3] + "y")
    if name.endswith("s"):
        forms.add(name[:-1])
    if name.endswith("es"):
        forms.add(name[:-2])
    return forms


def _is_property(node: ast.FunctionDef) -> bool:
    return any(isinstance(dec, ast.Name) and dec.id == "property"
               for dec in node.decorator_list)


@register
class DriftRule(Rule):
    """Flag batched evaluators drifting away from their scalar twins."""

    rule_id = "R003"
    title = "scalar-batched drift"

    def check(self, project: Project) -> Iterator[Finding]:
        tests_text = self._tests_text(project)
        for module, node, owner in project.iter_functions():
            if node.name.startswith("_") or _is_property(node):
                continue
            stem = self._stem(node.name)
            if stem is None:
                continue
            twins = self._twins(project, node.name, stem)
            if not twins:
                continue
            yield from self._check_signature(module, node, twins)
            if tests_text is not None and node.name not in tests_text:
                yield Finding(
                    rule_id=self.rule_id, path=module.rel,
                    line=node.lineno,
                    message=f"batched function '{node.name}' has no "
                            "pinned equivalence test in tests/",
                    hint="add a test comparing it element-wise against "
                         f"its scalar twin '{twins[0].name}'")

    @staticmethod
    def _stem(name: str) -> str | None:
        for suffix in ("_batched", "_batch"):
            if name.endswith(suffix):
                return name[: -len(suffix)]
        return None

    def _twins(self, project: Project, name: str,
               stem: str) -> list[ast.FunctionDef]:
        override = TWIN_OVERRIDES.get(name)
        candidates = []
        for candidate in ([override] if override
                          else sorted(_singular_forms(stem))):
            candidates += [fn for _, fn, _ in
                           project.functions_named(candidate)]
        return candidates

    def _check_signature(
        self, module: Module, batch: ast.FunctionDef,
        twins: list[ast.FunctionDef],
    ) -> Iterator[Finding]:
        batch_params = set(_params(batch))
        if batch_params & PACKED_PARAMS:
            return  # scalar args travel packed in work tuples (see R002)
        best_missing: list[tuple[str, str]] | None = None
        for twin in twins:
            missing = []
            for param in _params(twin):
                if param in CARRIER_PARAMS:
                    continue
                if not (_plural_forms(param) & batch_params):
                    missing.append((param, twin.name))
            if best_missing is None or len(missing) < len(best_missing):
                best_missing = missing
            if not missing:
                return  # signature covers at least one twin: no drift
        for param, twin_name in best_missing or []:
            yield Finding(
                rule_id=self.rule_id, path=module.rel, line=batch.lineno,
                message=f"'{batch.name}' diverged from scalar twin "
                        f"'{twin_name}': parameter '{param}' has no "
                        "batched counterpart",
                hint=f"accept '{param}' (or '{param}s') so the batched "
                     "signature stays a vectorization of the scalar one")

    @staticmethod
    def _tests_text(project: Project) -> str | None:
        tests_dir = project.root / "tests"
        if not tests_dir.is_dir():
            return None
        return "\n".join(path.read_text()
                         for path in sorted(tests_dir.glob("*.py")))
