"""Rule-plugin framework for the repo's AST invariant linter.

The linter walks ``src/repro`` with :mod:`ast` and runs every
registered :class:`Rule` over a :class:`Project` (the parsed module
set).  Rules yield :class:`Finding` objects — ``path:line``, a stable
rule id (``R001``..), a message and a fix hint — which the CLI
(``tools/repro_lint.py``) renders and gates CI on.

Three escape hatches, in decreasing order of preference:

* fix the code (findings are real bugs or conventions worth keeping);
* an inline pragma on the flagged line::

      x = cycles + warmup  # repro-lint: ignore[R001] dimensionless warmup

* a checked-in baseline file (one :attr:`Finding.key` per line) for
  legacy findings that cannot be fixed in one PR.  The baseline is
  matched by content, not line number, so unrelated edits never
  invalidate it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
import re
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding", "Module", "Project", "Rule", "register", "all_rules",
    "run_rules", "load_baseline", "split_baseline",
]

#: Inline suppression: ``# repro-lint: ignore[R001,R003] why`` (or a
#: bare ``ignore`` to silence every rule on that line).
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<ids>[A-Z0-9,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    path: str  #: repo-relative posix path
    line: int
    message: str
    hint: str = ""

    @property
    def key(self) -> str:
        """Line-number-independent identity used by the baseline."""
        return f"{self.path}::{self.rule_id}::{self.message}"

    def render(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule_id}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass(frozen=True)
class Module:
    """One parsed source file."""

    path: Path
    rel: str  #: path relative to the project root, posix separators
    tree: ast.Module
    source: str
    lines: tuple[str, ...]

    def suppressed_ids(self, line: int) -> set[str] | None:
        """Rule ids a pragma silences on ``line`` (1-based).

        Returns ``None`` when there is no pragma, and the empty set for
        a bare ``ignore`` (meaning: every rule).
        """
        if not 1 <= line <= len(self.lines):
            return None
        match = _PRAGMA.search(self.lines[line - 1])
        if match is None:
            return None
        ids = match.group("ids")
        if ids is None:
            return set()
        return {token.strip() for token in ids.split(",") if token.strip()}


class Project:
    """The parsed module set one lint run analyzes.

    ``root`` is the repository root (used for relative paths and so
    cross-cutting rules can peek at ``tests/``); ``modules`` are the
    files rules walk.
    """

    def __init__(self, root: Path, modules: Sequence[Module]) -> None:
        self.root = root
        self.modules = list(modules)

    @classmethod
    def load(cls, root: Path, paths: Iterable[Path]) -> "Project":
        """Parse every ``.py`` file under ``paths`` (files or dirs)."""
        files: list[Path] = []
        for path in paths:
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        modules = []
        for path in files:
            source = path.read_text()
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as error:
                raise SystemExit(f"repro-lint: cannot parse {path}: {error}")
            resolved = path.resolve()
            try:
                rel = resolved.relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = resolved.as_posix()  # outside the repo (fixtures)
            modules.append(Module(
                path=path, rel=rel, tree=tree, source=source,
                lines=tuple(source.splitlines())))
        return cls(root, modules)

    def iter_functions(self) -> Iterator[
            tuple[Module, ast.FunctionDef, ast.ClassDef | None]]:
        """Every function/method with its module and owning class."""
        for module in self.modules:
            stack: list[tuple[ast.AST, ast.ClassDef | None]] = [
                (module.tree, None)]
            while stack:
                node, owner = stack.pop()
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.ClassDef):
                        stack.append((child, child))
                    elif isinstance(child, (ast.FunctionDef,
                                            ast.AsyncFunctionDef)):
                        if isinstance(child, ast.FunctionDef):
                            yield module, child, owner
                        stack.append((child, owner))
                    else:
                        stack.append((child, owner))

    def functions_named(self, name: str) -> list[
            tuple[Module, ast.FunctionDef, ast.ClassDef | None]]:
        """All functions/methods with the given (unqualified) name."""
        return [(module, node, owner)
                for module, node, owner in self.iter_functions()
                if node.name == name]

    def iter_classes(self) -> Iterator[tuple[Module, ast.ClassDef]]:
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield module, node


class Rule:
    """Base class for lint rules; subclasses register via @register."""

    rule_id: str = ""
    title: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule instance to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} has no rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls()
    return rule_cls


def all_rules() -> list[Rule]:
    """Registered rules, ordered by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def run_rules(project: Project,
              rules: Sequence[Rule] | None = None) -> list[Finding]:
    """Run ``rules`` (default: all) and return pragma-filtered findings."""
    by_rel = {module.rel: module for module in project.modules}
    findings = []
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(project):
            module = by_rel.get(finding.path)
            if module is not None:
                ids = module.suppressed_ids(finding.line)
                if ids is not None and (not ids or finding.rule_id in ids):
                    continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
    return findings


def load_baseline(path: Path) -> list[str]:
    """Baseline entries (``Finding.key`` strings); comments stripped."""
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.append(line)
    return entries


def split_baseline(
    findings: Sequence[Finding], baseline: Iterable[str],
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Partition into (new, baselined) findings plus stale entries."""
    allowed = set(baseline)
    new = [f for f in findings if f.key not in allowed]
    old = [f for f in findings if f.key in allowed]
    stale = sorted(allowed - {f.key for f in findings})
    return new, old, stale
