"""R002: cache-key completeness at memoization call sites.

Every persistent memoization in the repo flows through
``runner.run_cached`` / ``runner.cached_sweep`` / ``runner.cached_batch``
with an explicit key dict hashed by ``config_hash``.  A config field
that influences the computed value but is missing from the key is a
*silent stale-hit* bug: the cache returns a result computed under a
different configuration, with no error anywhere.

At each call site this rule cross-checks two read sets against the key:

* **attribute reads** — ``param.field`` reads anywhere in the enclosing
  function (which includes the producer lambda / local batch closure)
  must appear in the key dict, either directly or through a one-level
  alias (``batch = ceil(job.batch / ...)`` covers ``job.batch`` when
  ``batch`` is keyed);
* **work-tuple indices** — constant subscripts the batched evaluator
  performs on its work items (``point[3]``, ``point[:3]`` slices and
  full-tuple / ``zip(*points)`` unpacks) must each appear as a
  subscript in the ``key_fn`` lambda.

Parameters named ``self``/``cls``/``cache`` are exempt (the cache
handle itself never belongs in the key).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Module, Project, Rule, register

#: Memoization entry points (matched by call name, dotted or bare).
_CACHE_CALLS = {"run_cached", "cached_sweep", "cached_batch"}

#: Enclosing-function parameters never expected in the key.
_EXEMPT_PARAMS = {"self", "cls", "cache"}


def _callee_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _param_names(node: ast.FunctionDef) -> list[str]:
    args = node.args
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    return params


def _attr_reads(node: ast.AST, roots: set[str]) -> set[tuple[str, str]]:
    """``(root, field)`` for every ``root.field`` read under ``node``."""
    reads = set()
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in roots):
            reads.add((sub.value.id, sub.attr))
    return reads


def _names_used(node: ast.AST) -> set[str]:
    """Names appearing *bare* (not as an attribute/subscript base).

    A key holding ``fleet.kind`` covers that one field, not the whole
    ``fleet`` object, so the base name must not count as covered.
    """
    bases = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Attribute, ast.Subscript)) \
                and isinstance(sub.value, ast.Name):
            bases.add(id(sub.value))
    return {sub.id for sub in ast.walk(node)
            if isinstance(sub, ast.Name) and id(sub) not in bases}


def _const_index(node: ast.expr) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if (isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)
            and isinstance(node.operand.value, int)):
        return -node.operand.value
    return None


def _index_reads(node: ast.AST, items_params: set[str],
                 element_vars: set[str]) -> set[int]:
    """Work-tuple indices a batched evaluator reads.

    ``items_params`` are the list-of-work-tuples parameters;
    ``element_vars`` accumulates loop/comprehension variables bound to
    single work tuples.  Handles constant subscripts, constant-bounded
    slices, full-tuple unpacking assignments and ``zip(*items)``
    column unpacks.
    """
    indices: set[int] = set()

    def element_targets(target: ast.expr, source: ast.expr) -> None:
        if (isinstance(source, ast.Name) and source.id in items_params
                and isinstance(target, ast.Name)):
            element_vars.add(target.id)

    def unpack_width(target: ast.expr) -> int | None:
        if isinstance(target, (ast.Tuple, ast.List)):
            if any(isinstance(el, ast.Starred) for el in target.elts):
                return None
            return len(target.elts)
        return None

    def visit_loop_target(target: ast.expr, source: ast.expr) -> None:
        element_targets(target, source)
        # for i, item in enumerate(items): the second target is bound
        # to one work tuple.
        if (isinstance(source, ast.Call)
                and _callee_name(source.func) == "enumerate"
                and source.args
                and isinstance(source.args[0], ast.Name)
                and source.args[0].id in items_params
                and isinstance(target, ast.Tuple)
                and len(target.elts) == 2
                and isinstance(target.elts[1], ast.Name)):
            element_vars.add(target.elts[1].id)

    for sub in ast.walk(node):
        if isinstance(sub, ast.For):
            visit_loop_target(sub.target, sub.iter)
        elif isinstance(sub, ast.comprehension):
            visit_loop_target(sub.target, sub.iter)
        elif isinstance(sub, (ast.Assign, ast.AnnAssign)):
            targets = (sub.targets if isinstance(sub, ast.Assign)
                       else [sub.target])
            value = sub.value
            if value is None:
                continue
            # zip(*items): each unpacked column is a read of one index.
            if (isinstance(value, ast.Call)
                    and _callee_name(value.func) == "zip"
                    and any(isinstance(arg, ast.Starred)
                            and isinstance(arg.value, ast.Name)
                            and arg.value.id in items_params
                            for arg in value.args)):
                for target in targets:
                    width = unpack_width(target)
                    if width is not None:
                        indices.update(range(width))
            # map(list, zip(*items)) keeps the same column structure.
            elif (isinstance(value, ast.Call)
                  and _callee_name(value.func) == "map"
                  and len(value.args) == 2
                  and isinstance(value.args[1], ast.Call)
                  and _callee_name(value.args[1].func) == "zip"
                  and any(isinstance(arg, ast.Starred)
                          and isinstance(arg.value, ast.Name)
                          and arg.value.id in items_params
                          for arg in value.args[1].args)):
                for target in targets:
                    width = unpack_width(target)
                    if width is not None:
                        indices.update(range(width))
            # (a, b, c) = element: reads indices 0..len-1.
            elif (isinstance(value, ast.Name)
                  and value.id in element_vars):
                for target in targets:
                    width = unpack_width(target)
                    if width is not None:
                        indices.update(range(width))
                    element_targets(target, value)
        elif isinstance(sub, ast.Subscript):
            if (isinstance(sub.value, ast.Name)
                    and sub.value.id in element_vars):
                index = _const_index(sub.slice)
                if index is not None:
                    indices.add(index)
                elif isinstance(sub.slice, ast.Slice):
                    lower = (_const_index(sub.slice.lower)
                             if sub.slice.lower is not None else 0)
                    upper = (_const_index(sub.slice.upper)
                             if sub.slice.upper is not None else None)
                    if lower is not None and upper is not None \
                            and 0 <= lower <= upper:
                        indices.update(range(lower, upper))
    return indices


class _CallSite:
    """One memoization call plus its enclosing-function context."""

    def __init__(self, module: Module, call: ast.Call,
                 enclosing: ast.FunctionDef | None) -> None:
        self.module = module
        self.call = call
        self.enclosing = enclosing

    def keyword(self, name: str) -> ast.expr | None:
        for kw in self.call.keywords:
            if kw.arg == name:
                return kw.value
        return None


@register
class CacheKeyRule(Rule):
    """Flag memoized computations whose key misses an input they read."""

    rule_id = "R002"
    title = "cache-key completeness"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            yield from self._check_module(project, module)

    def _check_module(self, project: Project,
                      module: Module) -> Iterator[Finding]:
        # Map every cache call to its innermost enclosing function.
        enclosing: dict[ast.Call, ast.FunctionDef | None] = {}

        def visit(node: ast.AST, owner: ast.FunctionDef | None) -> None:
            for child in ast.iter_child_nodes(node):
                next_owner = owner
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    next_owner = (child if isinstance(child, ast.FunctionDef)
                                  else owner)
                elif (isinstance(child, ast.Call)
                      and _callee_name(child.func) in _CACHE_CALLS):
                    enclosing[child] = owner
                visit(child, next_owner)

        visit(module.tree, None)
        for call, owner in enclosing.items():
            site = _CallSite(module, call, owner)
            name = _callee_name(call.func)
            if name == "run_cached":
                yield from self._check_run_cached(site)
            else:
                yield from self._check_cached_batch(project, site)

    # -- covered-by-key extraction ----------------------------------------

    def _key_cover(self, site: _CallSite, key_expr: ast.expr | None,
                   roots: set[str]) -> tuple[
                       set[tuple[str, str]], set[str], set[int], bool]:
        """(covered attrs, covered names, covered indices, resolved?)."""
        if key_expr is None:
            return set(), set(), set(), False
        lambda_params: set[str] = set()
        if isinstance(key_expr, ast.Lambda):
            lambda_params = {a.arg for a in key_expr.args.args}
            key_expr = key_expr.body
        # A key passed as a local name: follow one assignment back.
        if isinstance(key_expr, ast.Name) and site.enclosing is not None:
            target_name = key_expr.id
            for sub in ast.walk(site.enclosing):
                if isinstance(sub, ast.Assign) and any(
                        isinstance(t, ast.Name) and t.id == target_name
                        for t in sub.targets):
                    key_expr = sub.value
                    break
        covered_attrs = _attr_reads(key_expr, roots)
        covered_names = _names_used(key_expr)
        covered_indices = set()
        for sub in ast.walk(key_expr):
            if (isinstance(sub, ast.Subscript)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id in lambda_params):
                index = _const_index(sub.slice)
                if index is not None:
                    covered_indices.add(index)
        resolved = isinstance(
            key_expr, (ast.Dict, ast.Tuple, ast.List, ast.Call))
        return covered_attrs, covered_names, covered_indices, resolved

    def _alias_cover(self, site: _CallSite, covered_names: set[str],
                     roots: set[str]) -> set[tuple[str, str]]:
        """Attrs covered through one level of local aliasing."""
        covered: set[tuple[str, str]] = set()
        if site.enclosing is None:
            return covered
        for sub in ast.walk(site.enclosing):
            if isinstance(sub, ast.Assign):
                names = [t.id for t in sub.targets
                         if isinstance(t, ast.Name)]
                if any(name in covered_names for name in names):
                    covered |= _attr_reads(sub.value, roots)
        return covered

    # -- run_cached --------------------------------------------------------

    def _check_run_cached(self, site: _CallSite) -> Iterator[Finding]:
        if site.enclosing is None:
            return
        params = [p for p in _param_names(site.enclosing)
                  if p not in _EXEMPT_PARAMS]
        roots = set(params)
        key_expr = site.call.args[0] if site.call.args \
            else site.keyword("key_obj")
        covered_attrs, covered_names, _, resolved = self._key_cover(
            site, key_expr, roots)
        if not resolved and not covered_attrs and not covered_names:
            return  # key built elsewhere; nothing checkable statically
        covered_attrs |= self._alias_cover(site, covered_names, roots)
        reads = _attr_reads(site.enclosing, roots)
        for root, attr in sorted(reads - covered_attrs):
            if root in covered_names:
                continue  # the whole object is part of the key
            yield self._finding(
                site, f"memoized result reads '{root}.{attr}' but the "
                      f"cache key never includes it",
                f"add '{attr}' (or a value derived from it) to the key "
                "dict, or hash the whole object")

    # -- cached_sweep / cached_batch --------------------------------------

    def _check_cached_batch(self, project: Project,
                            site: _CallSite) -> Iterator[Finding]:
        key_fn = site.keyword("key_fn")
        fn_expr = site.call.args[0] if site.call.args else None
        roots: set[str] = set()
        if site.enclosing is not None:
            roots = {p for p in _param_names(site.enclosing)
                     if p not in _EXEMPT_PARAMS}
        covered_attrs, covered_names, covered_indices, resolved = \
            self._key_cover(site, key_fn, roots)
        if not resolved:
            return
        covered_attrs |= self._alias_cover(site, covered_names, roots)

        # Resolve the batch evaluator: a local closure or module function.
        fn_node: ast.FunctionDef | None = None
        if isinstance(fn_expr, ast.Name):
            fn_name = fn_expr.id
            scopes: list[ast.AST] = []
            if site.enclosing is not None:
                scopes.append(site.enclosing)
            scopes.append(site.module.tree)
            for scope in scopes:
                for child in ast.walk(scope):
                    if isinstance(child, ast.FunctionDef) \
                            and child.name == fn_name:
                        fn_node = child
                        break
                if fn_node is not None:
                    break
        if fn_node is None:
            return

        # Attribute reads of the enclosing function's parameters — the
        # batch closure sees them too — must be keyed.
        if site.enclosing is not None and roots:
            reads = _attr_reads(site.enclosing, roots)
            for root, attr in sorted(reads - covered_attrs):
                if root in covered_names:
                    continue
                yield self._finding(
                    site, f"batched evaluation reads '{root}.{attr}' but "
                          f"key_fn never includes it",
                    f"add '{attr}' to the key_fn dict")

        # Work-tuple indices the evaluator reads must be keyed.
        items_params = set(_param_names(fn_node)) - _EXEMPT_PARAMS
        element_vars: set[str] = set()
        read_indices = _index_reads(fn_node, items_params, element_vars)
        for index in sorted(read_indices - covered_indices):
            yield self._finding(
                site, f"batched evaluator '{fn_node.name}' reads work "
                      f"item field [{index}] but key_fn never includes "
                      f"it",
                f"key the field: add 'point[{index}]' to the key_fn "
                "dict (and bump the key to invalidate old entries)")

    def _finding(self, site: _CallSite, message: str,
                 hint: str) -> Finding:
        return Finding(
            rule_id=self.rule_id, path=site.module.rel,
            line=site.call.lineno, message=message, hint=hint)
