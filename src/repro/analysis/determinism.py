"""R004: determinism — no ambient (unseeded or global) randomness.

The simulators promise bit-identical reruns: traces, DP noise and data
sampling must all flow from explicitly seeded generators that callers
thread through.  This rule flags the three ways ambient randomness
sneaks in:

* legacy global-state NumPy calls — ``np.random.shuffle(...)``,
  ``np.random.rand(...)`` and friends (anything under ``np.random``
  except constructing a seeded ``default_rng`` / ``Generator`` /
  ``SeedSequence``);
* bare ``random.<fn>()`` module calls (the process-global stdlib RNG);
* seedless constructions — ``default_rng()`` or ``random.Random()``
  with no arguments, which seed from the OS.

Test files are not linted, so fixtures may do as they like.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, Project, Rule, register

#: np.random attributes that are fine: seeded-generator constructors.
_NP_ALLOWED = {"default_rng", "Generator", "SeedSequence", "PCG64",
               "Philox", "SFC64", "MT19937", "BitGenerator"}


def _dotted(node: ast.expr) -> list[str]:
    """Attribute chain as names, e.g. ``np.random.rand`` -> [np,random,rand]."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


@register
class DeterminismRule(Rule):
    """Flag unseeded or process-global randomness."""

    rule_id = "R004"
    title = "determinism (seeded RNG only)"

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                chain = _dotted(node.func)
                finding = self._check_call(node, chain)
                if finding is not None:
                    message, hint = finding
                    yield Finding(
                        rule_id=self.rule_id, path=module.rel,
                        line=node.lineno, message=message, hint=hint)

    def _check_call(self, node: ast.Call,
                    chain: list[str]) -> tuple[str, str] | None:
        if not chain:
            return None
        name = ".".join(chain)
        # numpy global-state RNG: np.random.<fn> / numpy.random.<fn>
        if len(chain) >= 3 and chain[0] in ("np", "numpy") \
                and chain[1] == "random":
            if chain[2] not in _NP_ALLOWED:
                return (f"process-global numpy RNG call '{name}'",
                        "thread a seeded np.random.Generator "
                        "(np.random.default_rng(seed)) instead")
            if chain[2] == "default_rng" and not node.args \
                    and not node.keywords:
                return ("'default_rng()' without a seed is "
                        "nondeterministic",
                        "pass an explicit seed (or a caller-provided "
                        "Generator)")
            return None
        # from numpy.random import default_rng; default_rng()
        if chain == ["default_rng"] and not node.args and not node.keywords:
            return ("'default_rng()' without a seed is nondeterministic",
                    "pass an explicit seed (or a caller-provided "
                    "Generator)")
        # stdlib: bare random.<fn> uses the process-global RNG.
        if len(chain) == 2 and chain[0] == "random":
            if chain[1] == "Random":
                if not node.args and not node.keywords:
                    return ("'random.Random()' without a seed is "
                            "nondeterministic",
                            "construct it with an explicit seed")
                return None
            return (f"process-global stdlib RNG call '{name}'",
                    "construct a seeded random.Random(seed) and call "
                    "methods on it")
        return None
