"""AST-based invariant linter for the repro codebase.

The package is a small rule-plugin framework (:mod:`.core`) plus one
module per rule:

========  =========================================  ==================
rule id   invariant                                  module
========  =========================================  ==================
R001      units-of-measure consistency               :mod:`.units`
R002      cache-key completeness                     :mod:`.cachekeys`
R003      scalar-batched drift                       :mod:`.drift`
R004      determinism (seeded RNG only)              :mod:`.determinism`
R005      oracle-guard (scalar fallback reachable)   :mod:`.oracle`
R006      wall-clock isolation (repro.obs only)      :mod:`.walltime`
R007      link-rate homing (arch.interconnect only)  :mod:`.bandwidth`
R008      fault-path RNG isolation (keyed draws)     :mod:`.faultrng`
========  =========================================  ==================

Run it through ``tools/repro_lint.py`` (the ``lint`` CI job does);
see ``docs/static-analysis.md`` for the conventions each rule enforces
and how to suppress a finding.
"""

from repro.analysis.core import (
    Finding, Module, Project, Rule, all_rules, load_baseline, register,
    run_rules, split_baseline,
)

# Importing the rule modules populates the registry.
from repro.analysis import (  # noqa: F401  (imported for side effects)
    bandwidth, cachekeys, determinism, drift, faultrng, oracle, units,
    walltime,
)

__all__ = [
    "Finding", "Module", "Project", "Rule", "all_rules",
    "load_baseline", "register", "run_rules", "split_baseline",
]
