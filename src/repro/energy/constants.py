"""Per-component power/energy/area constants (65 nm, Section V / Table III).

The paper obtains these from Synopsys Design Compiler synthesis (compute
units), CACTI (SRAM) and Horowitz's ISSCC'14 energy survey (DRAM).  We
cannot run EDA tools offline, so each constant is a parameter of a
component-level model *calibrated to the paper's published Table III
values* and standard energy-per-operation references; DESIGN.md records
this substitution.  Everything is expressed per operation or per byte so
any array geometry can be priced, not only the 128x128 default.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PowerConstants:
    """Dynamic power at full activity, derived from Table III.

    13.4 W for 16384 WS MACs at 940 MHz implies ~0.87 pJ per MAC-cycle;
    the outer-product engine adds broadcast-bus switching (+7.8 W chip
    total) and the PPU's 8x127 FP32 adders draw 2.6 W.
    """

    ws_mac_pj: float = 0.87
    os_mac_pj: float = 0.883
    outer_product_mac_pj: float = 0.87
    #: Row/column broadcast-bus energy per PE per active cycle.
    broadcast_pj: float = 0.506
    #: One pipelined FP32 adder in the PPU tree, per cycle.
    ppu_add_pj: float = 2.72
    #: Vector unit lane energy per op.
    vector_op_pj: float = 2.0


@dataclass(frozen=True)
class MemoryEnergyConstants:
    """Storage access energies (pJ/byte).

    SRAM follows a CACTI-like large-array figure at 65 nm; DRAM uses a
    Horowitz ISSCC'14 derived figure (~7.5 pJ/bit of interface +
    array energy for HBM-class DRAM).
    """

    sram_pj_per_byte: float = 6.0
    dram_pj_per_byte: float = 60.0


@dataclass(frozen=True)
class AreaConstants:
    """Component areas (mm^2) at 65 nm, calibrated to Table III.

    68 mm^2 for the 16384-PE WS array implies ~4150 um^2 per
    BF16-multiply/FP32-add PE with its pipeline registers; the OS
    accumulator adds ~120 um^2 per PE; the all-to-all broadcast buses
    add ~17.6% of array area; each PPU adder is ~2950 um^2.
    """

    ws_pe_mm2: float = 68.0 / 16384
    os_accumulator_mm2: float = 2.0 / 16384
    #: Fractional wiring overhead of the row/column broadcast buses.
    broadcast_bus_fraction: float = 12.0 / 68.0
    ppu_adder_mm2: float = 3.0 / 1016
