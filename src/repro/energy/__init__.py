"""Energy, power and area models (Table III, Figure 16)."""

from repro.energy.constants import (
    AreaConstants,
    MemoryEnergyConstants,
    PowerConstants,
)
from repro.energy.model import EnergyBreakdown, EnergyModel, EngineProfile
from repro.energy.sram import SramEstimate, estimate_sram

__all__ = [
    "PowerConstants",
    "MemoryEnergyConstants",
    "AreaConstants",
    "EnergyModel",
    "EnergyBreakdown",
    "EngineProfile",
    "estimate_sram",
    "SramEstimate",
]
