"""Area / power / energy models (Table III and Figure 16).

Component-level accounting calibrated against the paper's synthesis
results (see :mod:`repro.energy.constants`):

* **Area**: per-PE MAC + registers, an OS accumulator increment, the
  outer-product broadcast-bus wiring fraction and the PPU adder trees.
* **Power**: full-activity dynamic power of each unit.
* **Energy** (Figure 16): each unit burns its power for the cycles it
  is busy (so poor utilization directly wastes energy), plus SRAM and
  DRAM access energy per byte moved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import OpRun
from repro.arch.engine import ArrayConfig
from repro.core.ppu import PpuConfig
from repro.energy.constants import (
    AreaConstants,
    MemoryEnergyConstants,
    PowerConstants,
)
from repro.training.simulate import TrainingReport

_ENGINE_KINDS = ("ws", "os", "diva")


@dataclass(frozen=True)
class EngineProfile:
    """One column of Table III."""

    name: str
    macs: int
    peak_tflops: float
    power_w: float
    area_mm2: float
    effective_tflops: float | None = None

    @property
    def tflops_per_watt(self) -> float | None:
        if self.effective_tflops is None:
            return None
        return self.effective_tflops / self.power_w

    @property
    def tflops_per_mm2(self) -> float | None:
        if self.effective_tflops is None:
            return None
        return self.effective_tflops / self.area_mm2


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one training step, in joules."""

    engine_j: float
    ppu_j: float
    vector_j: float
    sram_j: float
    dram_j: float

    @property
    def total_j(self) -> float:
        return (self.engine_j + self.ppu_j + self.vector_j
                + self.sram_j + self.dram_j)


class EnergyModel:
    """Prices areas, powers and training-step energies."""

    def __init__(
        self,
        array: ArrayConfig | None = None,
        ppu: PpuConfig | None = None,
        power: PowerConstants | None = None,
        memory: MemoryEnergyConstants | None = None,
        area: AreaConstants | None = None,
    ) -> None:
        self.array = array or ArrayConfig()
        self.ppu = ppu or PpuConfig()
        self.power = power or PowerConstants()
        self.memory = memory or MemoryEnergyConstants()
        self.area = area or AreaConstants()

    # -- power -----------------------------------------------------------
    def engine_power_w(self, kind: str) -> float:
        """Full-activity dynamic power of a GEMM engine."""
        macs = self.array.peak_macs_per_cycle
        freq = self.array.frequency_hz
        pj = {
            "ws": self.power.ws_mac_pj,
            "os": self.power.os_mac_pj,
            "diva": (self.power.outer_product_mac_pj
                     + self.power.broadcast_pj),
        }[self._check(kind)]
        return macs * pj * 1e-12 * freq

    def ppu_power_w(self) -> float:
        """Full-activity dynamic power of the PPU adder trees."""
        adders = self.ppu.num_trees * (self.ppu.tree_width - 1)
        return adders * self.power.ppu_add_pj * 1e-12 * self.ppu.frequency_hz

    # -- area ------------------------------------------------------------
    def engine_area_mm2(self, kind: str) -> float:
        """GEMM engine area (Table III row)."""
        kind = self._check(kind)
        pes = self.array.peak_macs_per_cycle
        base = pes * self.area.ws_pe_mm2
        if kind == "ws":
            return base
        with_acc = base + pes * self.area.os_accumulator_mm2
        if kind == "os":
            return with_acc
        return with_acc * (1.0 + self.area.broadcast_bus_fraction)

    def ppu_area_mm2(self) -> float:
        """PPU area: ``num_trees`` trees of ``tree_width - 1`` adders."""
        adders = self.ppu.num_trees * (self.ppu.tree_width - 1)
        return adders * self.area.ppu_adder_mm2

    # -- Table III ----------------------------------------------------------
    def engine_profile(self, kind: str,
                       effective_tflops: float | None = None) -> EngineProfile:
        """Assemble one Table III column."""
        kind = self._check(kind)
        name = {"ws": "Systolic WS", "os": "Systolic OS",
                "diva": "Outer-product"}[kind]
        return EngineProfile(
            name=name,
            macs=self.array.peak_macs_per_cycle,
            peak_tflops=self.array.peak_flops / 1e12,
            power_w=self.engine_power_w(kind),
            area_mm2=self.engine_area_mm2(kind),
            effective_tflops=effective_tflops,
        )

    # -- energy --------------------------------------------------------------
    def training_energy(self, report: TrainingReport,
                        kind: str) -> EnergyBreakdown:
        """Energy of one simulated training step (Figure 16)."""
        kind = self._check(kind)
        freq = self.array.frequency_hz
        total: OpRun = report.total
        engine_j = self.engine_power_w(kind) * total.compute_cycles / freq
        ppu_j = 0.0
        if report.with_ppu:
            ppu_j = self.ppu_power_w() * total.ppu_cycles / freq
        vector_lane_ops = total.vector_ops
        vector_j = vector_lane_ops * self.power.vector_op_pj * 1e-12
        sram_bytes = total.sram_read_bytes + total.sram_write_bytes
        sram_j = sram_bytes * self.memory.sram_pj_per_byte * 1e-12
        dram_j = total.dram_bytes * self.memory.dram_pj_per_byte * 1e-12
        return EnergyBreakdown(
            engine_j=engine_j,
            ppu_j=ppu_j,
            vector_j=vector_j,
            sram_j=sram_j,
            dram_j=dram_j,
        )

    @staticmethod
    def _check(kind: str) -> str:
        kind = kind.lower()
        if kind not in _ENGINE_KINDS:
            raise KeyError(f"unknown engine kind {kind!r}; "
                           f"choose from {_ENGINE_KINDS}")
        return kind
