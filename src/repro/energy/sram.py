"""CACTI-like on-chip SRAM area/energy estimator.

A deliberately small model in the spirit of CACTI's outputs for large
(multi-MB) SRAM macros at 65 nm: area scales linearly with capacity
with a banking overhead, access energy grows with the square root of
capacity (longer word/bit lines), and leakage scales with capacity.
Used for the chip-level context of Table III and the SRAM term of the
Figure 16 energy model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SramEstimate:
    """Estimated characteristics of an SRAM macro."""

    capacity_bytes: int
    area_mm2: float
    read_pj_per_byte: float
    write_pj_per_byte: float
    leakage_mw: float


def estimate_sram(
    capacity_bytes: int,
    bank_bytes: int = 2 * 2**20,
    density_mm2_per_mb: float = 2.4,
    base_access_pj_per_byte: float = 1.5,
    leakage_mw_per_mb: float = 18.0,
) -> SramEstimate:
    """Estimate a banked SRAM at 65 nm.

    Parameters follow published CACTI 6.5 figures for 65 nm SRAM:
    ~2.4 mm^2 per MB density and access energy rising roughly with the
    square root of the bank size.
    """
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    banks = max(1, math.ceil(capacity_bytes / bank_bytes))
    bank_capacity = capacity_bytes / banks
    megabytes = capacity_bytes / 2**20
    # Wordline/bitline energy grows ~sqrt(bank capacity); normalize so a
    # 2 MB bank costs ~6 pJ/byte (the Figure 16 constant).
    scale = math.sqrt(bank_capacity / (2 * 2**20))
    access_pj = base_access_pj_per_byte * (1.0 + 3.0 * scale)
    area = megabytes * density_mm2_per_mb * 1.08  # banking overhead
    return SramEstimate(
        capacity_bytes=capacity_bytes,
        area_mm2=area,
        read_pj_per_byte=access_pj,
        write_pj_per_byte=access_pj * 1.1,
        leakage_mw=megabytes * leakage_mw_per_mb,
    )
