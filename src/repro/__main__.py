"""Command-line interface for the DiVa reproduction.

Usage:
    python -m repro models                     # list the workload zoo
    python -m repro experiments                # list experiments
    python -m repro run fig13                  # regenerate one figure
    python -m repro run all                    # regenerate everything
    python -m repro simulate ResNet-50         # one-model comparison
    python -m repro design-space --heights 64  # PE-geometry sweep
    python -m repro scaling --chips 1 2 4 8    # multi-chip scaling
    python -m repro serve --trace-jobs 200     # fleet serving simulator
    python -m repro capacity --max-p99-wait 60 # fleet capacity planner
    python -m repro trace fleet_trace.json     # inspect a trace file
"""

from __future__ import annotations

import argparse
import sys

from repro.workloads import MODEL_NAMES, build_model


def _cmd_models(_: argparse.Namespace) -> int:
    for name in MODEL_NAMES:
        print(build_model(name).describe())
    return 0


def _cmd_experiments(_: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    for key, module in ALL_EXPERIMENTS.items():
        doc = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{key:12s} {doc}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    if args.experiment == "all":
        from repro.experiments.run_all import main as run_all
        run_all(["--jobs", str(args.jobs)] if args.jobs else [])
        return 0
    module = ALL_EXPERIMENTS.get(args.experiment)
    if module is None:
        print(f"unknown experiment {args.experiment!r}; "
              f"choose from {', '.join(ALL_EXPERIMENTS)} or 'all'",
              file=sys.stderr)
        return 2
    print(module.render())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core import build_accelerator
    from repro.training import (
        Algorithm,
        max_batch_size,
        simulate_training_step,
    )

    recorder = None
    if args.trace:
        from repro.obs import TraceRecorder
        recorder = TraceRecorder()
    network = build_model(args.model)
    batch = args.batch or max_batch_size(network, Algorithm.DP_SGD)
    print(f"{network.describe()}, B={batch}")
    if args.chips > 1:
        from repro.core import build_cluster
        from repro.training import simulate_sharded_training_step
        cluster = build_cluster("diva", n_chips=args.chips)
        report = simulate_sharded_training_step(
            network, Algorithm(args.algorithm), cluster, batch,
            recorder=recorder)
        print(f"  {args.chips}x diva "
              f"{report.total_seconds * 1e3:9.2f} ms "
              f"(comm {report.comm_seconds * 1e3:.2f} ms exposed)")
    else:
        base = None
        for kind, with_ppu in (("ws", False), ("os", True),
                               ("diva", True)):
            accel = (build_accelerator("ws") if kind == "ws"
                     else build_accelerator(kind, with_ppu=with_ppu))
            report = simulate_training_step(
                network, Algorithm(args.algorithm), accel, batch,
                recorder=recorder)
            if base is None:
                base = report.total_seconds
            print(f"  {accel.name:5s} "
                  f"{report.total_seconds * 1e3:9.2f} ms "
                  f"({base / report.total_seconds:.2f}x)")
    if recorder is not None:
        recorder.write(args.trace)
        print(f"trace: {len(recorder.events)} events -> {args.trace}")
    return 0


def _cmd_design_space(args: argparse.Namespace) -> int:
    from repro.experiments import design_space
    from repro.experiments.runner import CacheStats, ResultCache

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    stats = CacheStats() if cache is not None else None
    rows = design_space.run(
        models=tuple(args.models),
        heights=tuple(args.heights),
        widths=tuple(args.widths) if args.widths else None,
        jobs=args.jobs,
        cache=cache,
        stats=stats,
    )
    print(design_space.render(rows))
    if stats is not None:
        print(stats.render())
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.experiments import scaling
    from repro.experiments.runner import CacheStats, ResultCache

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    stats = CacheStats() if cache is not None else None
    try:
        rows = scaling.run(
            models=tuple(args.models or scaling.DEFAULT_MODELS),
            chips=tuple(args.chips or scaling.DEFAULT_CHIPS),
            algorithms=tuple(args.algorithms or scaling.DEFAULT_ALGORITHMS),
            mode=args.mode,
            topology=args.topology,
            batch=args.batch,
            overlap=args.overlap,
            bucket_bytes=(int(args.bucket_mb * 2**20)
                          if args.bucket_mb is not None else None),
            chips_per_node=args.chips_per_node,
            pp=args.pp,
            tp=args.tp,
            plan_mode=args.plan_mode,
            fabric=args.fabric,
            hbm_gb=args.hbm_gb,
            jobs=args.jobs,
            cache=cache,
            stats=stats,
        )
    except ValueError as error:
        print(f"scaling: {error}", file=sys.stderr)
        return 2
    print(scaling.render(rows))
    if stats is not None:
        print(stats.render())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.experiments import serve
    from repro.experiments.runner import ResultCache

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    profiler = None
    if args.profile:
        from repro.obs import Profiler
        profiler = Profiler("serve")
    try:
        autoscale = None
        if args.autoscale:
            from repro.serve import AutoscalerPolicy
            autoscale = AutoscalerPolicy(
                max_clusters=args.autoscale_max,
                provision_delay_s=args.provision_delay,
                target_p99_wait_s=args.autoscale_p99,
            )
        rows = serve.run(
            policies=tuple(args.policy) if args.policy else None,
            trace_jobs=args.trace_jobs,
            seed=args.seed,
            chips=args.chips,
            chips_per_cluster=args.chips_per_cluster,
            topology=args.topology,
            chips_per_node=args.chips_per_node,
            bucket_bytes=(int(args.bucket_mb * 2**20)
                          if args.bucket_mb is not None else None),
            overlap=args.overlap,
            pp=args.pp,
            tp=args.tp,
            fabric=args.fabric,
            epsilon_budget=args.epsilon_budget,
            delta=args.delta,
            streaming=args.streaming,
            trace_shape=args.trace_shape,
            mean_interarrival_s=args.mean_interarrival,
            autoscale=autoscale,
            mtbf_hours=args.mtbf_hours,
            checkpoint_interval=args.checkpoint_interval,
            max_retries=args.max_retries,
            straggler_rate=args.straggler_rate,
            cache=cache,
            trace_path=args.trace,
            metrics_dir=args.metrics_out,
            profiler=profiler,
        )
    except ValueError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    print(serve.render(rows))
    if args.trace:
        print(f"trace -> {args.trace}")
    if args.metrics_out:
        print(f"metrics -> {args.metrics_out}")
    if profiler is not None:
        profiler.write(args.profile)
        print(f"profile -> {args.profile}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import load_trace, render_summary, summarize

    try:
        events = load_trace(args.file)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"trace: {error}", file=sys.stderr)
        return 2
    summary = summarize(events)
    if args.json:
        print(json.dumps(summary, indent=1, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    from repro.experiments import capacity
    from repro.experiments.runner import ResultCache

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    try:
        result = capacity.run(
            trace_jobs=args.trace_jobs,
            seed=args.seed,
            trace_shape=args.trace_shape,
            mean_interarrival_s=args.mean_interarrival,
            max_p99_wait_s=args.max_p99_wait,
            target_jobs_per_s=args.target_jobs_per_s,
            chips_per_cluster=args.chips_per_cluster,
            topology=args.topology,
            chips_per_node=args.chips_per_node,
            bucket_bytes=(int(args.bucket_mb * 2**20)
                          if args.bucket_mb is not None else None),
            overlap=args.overlap,
            policy=args.policy,
            epsilon_budget=args.epsilon_budget,
            delta=args.delta,
            max_clusters=args.max_clusters,
            cache=cache,
        )
    except ValueError as error:
        print(f"capacity: {error}", file=sys.stderr)
        return 2
    print(capacity.render(result))
    return 0 if result["feasible"] else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="DiVa (MICRO 2022) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("models", help="list the workload zoo")
    sub.add_parser("experiments", help="list available experiments")
    run = sub.add_parser("run", help="regenerate a figure/table")
    run.add_argument("experiment", help="experiment key, or 'all'")
    run.add_argument("--jobs", type=int, default=0,
                     help="worker processes for 'all' (default: all cores)")
    sim = sub.add_parser("simulate", help="simulate one model")
    sim.add_argument("model", choices=MODEL_NAMES)
    sim.add_argument("--batch", type=int, default=0,
                     help="mini-batch (default: max DP-SGD batch)")
    sim.add_argument("--algorithm", default="DP-SGD(R)",
                     choices=[a.value for a in __import__(
                         "repro.training", fromlist=["Algorithm"]
                     ).Algorithm])
    sim.add_argument("--chips", type=int, default=1, metavar="N",
                     help="simulate a sharded step on an N-chip DiVa "
                          "cluster instead of the 3-accelerator "
                          "comparison (default: 1)")
    sim.add_argument("--trace", default=None, metavar="FILE",
                     help="write per-phase/per-op spans as Chrome-trace "
                          "JSON (open in Perfetto, or inspect with "
                          "'python -m repro trace')")
    design = sub.add_parser(
        "design-space",
        help="sweep PE-array geometries (batched in-process, "
             "JSON-cached)")
    design.add_argument("--models", nargs="+", default=["VGG-16",
                                                        "BERT-large"],
                        choices=MODEL_NAMES, metavar="MODEL")
    design.add_argument("--heights", nargs="+", type=int,
                        default=[64, 128, 256], metavar="H",
                        help="PE-array heights (width mirrors height "
                             "unless --widths is given)")
    design.add_argument("--widths", nargs="+", type=int, default=None,
                        metavar="W",
                        help="PE-array widths (full cross product)")
    design.add_argument("--jobs", type=int, default=None,
                        help="accepted for compatibility; the sweep is "
                             "analytic and runs batched in-process "
                             "without workers")
    design.add_argument("--cache-dir", default=None,
                        help="persist results as JSON under this "
                             "directory, keyed by config hash")
    # Defaults resolve inside _cmd_scaling (None sentinels here) so
    # building the parser never imports the experiments package.
    scal = sub.add_parser(
        "scaling",
        help="multi-chip data-parallel DP-SGD scaling sweep "
             "(batched in-process, JSON-cached)")
    scal.add_argument("--chips", nargs="+", type=int, default=None,
                      metavar="N",
                      help="cluster sizes to sweep (default: 1 2 4 8)")
    scal.add_argument("--models", nargs="+", default=None,
                      choices=MODEL_NAMES, metavar="MODEL",
                      help="workloads (default: VGG-16 BERT-large)")
    scal.add_argument("--algorithms", nargs="+", default=None,
                      choices=["SGD", "DP-SGD", "DP-SGD(R)"],
                      metavar="ALG",
                      help="training algorithms (default: the DP pair)")
    scal.add_argument("--mode", choices=["strong", "weak"],
                      default="strong",
                      help="strong: fixed global batch; weak: fixed "
                           "per-chip batch")
    scal.add_argument("--topology",
                      choices=["ring", "all_to_all", "hierarchical"],
                      default="ring", help="interconnect topology")
    scal.add_argument("--chips-per-node", type=int, default=1,
                      metavar="K",
                      help="island size of the hierarchical topology; "
                           "must divide every chip count (default: 1)")
    scal.add_argument("--bucket-mb", type=float, default=None,
                      metavar="MB",
                      help="gradient-bucket size in MiB for pipelined "
                           "bucket allreduces (default: one monolithic "
                           "bucket)")
    scal.add_argument("--overlap", default=True,
                      action=argparse.BooleanOptionalAction,
                      help="hide bucketed gradient allreduces behind "
                           "backward compute (--no-overlap charges "
                           "serial communication)")
    scal.add_argument("--batch", type=int, default=None,
                      help="global batch at one chip (default: largest "
                           "feasible multiple of lcm(chips))")
    scal.add_argument("--pp", type=int, default=1, metavar="P",
                      help="pipeline-parallel stages per grid point; "
                           "pp*tp must divide every chip count "
                           "(default: 1)")
    scal.add_argument("--tp", type=int, default=1, metavar="T",
                      help="tensor-parallel shards per grid point "
                           "(default: 1)")
    scal.add_argument("--plan", choices=["fixed", "auto"],
                      default="fixed", dest="plan_mode",
                      help="fixed: apply --pp/--tp everywhere; auto: "
                           "pick the fastest memory-feasible "
                           "DP x PP x TP factorization per point")
    scal.add_argument("--fabric", choices=["two-tier", "uniform"],
                      default=None,
                      help="heterogeneous link preset (fast intra-node "
                           "+ slow cross-node); default: uniform "
                           "100 GB/s links")
    scal.add_argument("--hbm-gb", type=float, default=None,
                      metavar="GB",
                      help="per-chip HBM capacity in GiB for --plan "
                           "auto feasibility (default: the chip's "
                           "16 GiB)")
    scal.add_argument("--jobs", type=int, default=None,
                      help="accepted for compatibility; the sweep is "
                           "analytic and runs batched in-process "
                           "without workers")
    scal.add_argument("--cache-dir", default=None,
                      help="persist results as JSON under this "
                           "directory, keyed by config hash")
    # Policy choices are inlined (not imported from repro.serve) so
    # building the parser never imports the serving stack.
    serve = sub.add_parser(
        "serve",
        help="multi-tenant DP-training fleet simulator with "
             "privacy-budget admission control")
    serve.add_argument("--jobs", "--trace-jobs", dest="trace_jobs",
                       type=int, default=60, metavar="N",
                       help="synthetic trace length (default: 60); "
                            "traces of 10k+ jobs stream through the "
                            "array-backed simulator")
    serve.add_argument("--streaming", default=None,
                       action=argparse.BooleanOptionalAction,
                       help="force the streaming (array-backed, O(1)-"
                            "metric) simulator on or off (default: "
                            "auto by trace length)")
    serve.add_argument("--seed", type=int, default=7,
                       help="trace generator seed (default: 7)")
    serve.add_argument("--chips", type=int, default=4,
                       help="total accelerators in the fleet "
                            "(default: 4)")
    serve.add_argument("--chips-per-cluster", type=int, default=1,
                       metavar="N",
                       help="chips per job-granularity cluster; must "
                            "divide --chips (default: 1)")
    serve.add_argument("--policy", nargs="+", default=None,
                       choices=["fifo", "sjf", "budget"],
                       metavar="POLICY",
                       help="scheduling policies to compare: fifo, "
                            "sjf, budget (default: all three)")
    serve.add_argument("--topology",
                       choices=["ring", "all_to_all", "hierarchical"],
                       default="ring",
                       help="intra-cluster interconnect topology")
    serve.add_argument("--chips-per-node", type=int, default=1,
                       metavar="K",
                       help="hierarchical-island size; must divide "
                            "--chips-per-cluster (default: 1)")
    serve.add_argument("--bucket-mb", type=float, default=None,
                       metavar="MB",
                       help="gradient-bucket size in MiB for the "
                            "overlap-aware allreduce model (default: "
                            "one monolithic bucket)")
    serve.add_argument("--overlap", default=True,
                       action=argparse.BooleanOptionalAction,
                       help="hide bucketed gradient allreduces behind "
                            "backward compute in service-time "
                            "predictions")
    serve.add_argument("--pp", type=int, default=1, metavar="P",
                       help="pipeline-parallel stages carved out of "
                            "each cluster (default: 1)")
    serve.add_argument("--tp", type=int, default=1, metavar="T",
                       help="tensor-parallel shards per pipeline stage "
                            "(default: 1)")
    serve.add_argument("--fabric", choices=["two-tier", "uniform"],
                       default=None,
                       help="heterogeneous link preset for cluster "
                            "collectives (default: homogeneous links)")
    serve.add_argument("--epsilon-budget", type=float, default=3.0,
                       metavar="EPS",
                       help="per-tenant lifetime epsilon budget "
                            "(default: 3.0)")
    serve.add_argument("--delta", type=float, default=1e-5,
                       help="per-tenant delta (default: 1e-5)")
    serve.add_argument("--trace-shape", default="poisson",
                       choices=["poisson", "diurnal", "bursty",
                                "multiregion"],
                       help="arrival-process shape of the synthetic "
                            "trace (default: poisson)")
    serve.add_argument("--mean-interarrival", type=float, default=8.0,
                       metavar="S",
                       help="mean seconds between arrivals, any shape "
                            "(default: 8.0)")
    serve.add_argument("--autoscale", default=False,
                       action=argparse.BooleanOptionalAction,
                       help="scale clusters up on load and retire them "
                            "when idle instead of simulating a static "
                            "fleet")
    serve.add_argument("--autoscale-max", type=int, default=64,
                       metavar="N",
                       help="cluster ceiling while autoscaling "
                            "(default: 64)")
    serve.add_argument("--provision-delay", type=float, default=60.0,
                       metavar="S",
                       help="seconds between requesting a cluster and "
                            "it accepting work (default: 60)")
    serve.add_argument("--autoscale-p99", type=float, default=None,
                       metavar="S",
                       help="also scale up when the streaming p99 "
                            "queueing wait exceeds this many seconds "
                            "(default: queue-depth trigger only)")
    serve.add_argument("--mtbf-hours", type=float, default=None,
                       metavar="H",
                       help="inject seeded chip failures with this "
                            "per-chip mean time between failures; "
                            "crashed jobs restart from their last "
                            "checkpoint (default: no faults)")
    serve.add_argument("--checkpoint-interval", type=int, default=None,
                       metavar="STEPS",
                       help="checkpoint every N steps while faults are "
                            "on (default: Young/Daly optimum per "
                            "model)")
    serve.add_argument("--max-retries", type=int, default=3,
                       metavar="N",
                       help="re-admissions per crashed job before it "
                            "counts as failed (default: 3)")
    serve.add_argument("--straggler-rate", type=float, default=0.0,
                       metavar="P",
                       help="fraction of attempts slowed by a "
                            "transient straggler while faults are on "
                            "(default: 0.0)")
    serve.add_argument("--cache-dir", default=None,
                       help="persist per-config step latencies as "
                            "JSON under this directory")
    serve.add_argument("--trace", default=None, metavar="FILE",
                       help="write job-lifecycle spans, autoscaler "
                            "instants, and load counters for every "
                            "policy as Chrome-trace JSON")
    serve.add_argument("--metrics-out", default=None, metavar="DIR",
                       help="write one metrics_<policy>.json registry "
                            "dump (counters, P2 histograms, windowed "
                            "series) per policy under DIR")
    serve.add_argument("--profile", default=None, metavar="FILE",
                       help="write a wall-clock self-profile of the "
                            "harness (stage timings + counters) as "
                            "JSON")
    capacity = sub.add_parser(
        "capacity",
        help="smallest fleet meeting a p99-wait/throughput SLO "
             "(doubling + bisection over streaming runs)")
    capacity.add_argument("--jobs", "--trace-jobs", dest="trace_jobs",
                          type=int, default=20_000, metavar="N",
                          help="synthetic trace length (default: 20000)")
    capacity.add_argument("--seed", type=int, default=7,
                          help="trace generator seed (default: 7)")
    capacity.add_argument("--trace-shape", default="poisson",
                          choices=["poisson", "diurnal", "bursty",
                                   "multiregion"],
                          help="arrival-process shape (default: poisson)")
    capacity.add_argument("--mean-interarrival", type=float, default=1.0,
                          metavar="S",
                          help="mean seconds between arrivals "
                               "(default: 1.0)")
    capacity.add_argument("--max-p99-wait", type=float, default=120.0,
                          metavar="S",
                          help="SLO: p99 queueing wait ceiling in "
                               "seconds (default: 120)")
    capacity.add_argument("--target-jobs-per-s", type=float, default=None,
                          metavar="T",
                          help="SLO: completed jobs per second of "
                               "makespan (default: no throughput floor)")
    capacity.add_argument("--chips-per-cluster", type=int, default=1,
                          metavar="N",
                          help="chips per job-granularity cluster "
                               "(default: 1)")
    capacity.add_argument("--policy", default="fifo",
                          choices=["fifo", "sjf", "budget"],
                          help="scheduling policy under test "
                               "(default: fifo)")
    capacity.add_argument("--topology",
                          choices=["ring", "all_to_all", "hierarchical"],
                          default="ring",
                          help="intra-cluster interconnect topology")
    capacity.add_argument("--chips-per-node", type=int, default=1,
                          metavar="K",
                          help="hierarchical-island size; must divide "
                               "--chips-per-cluster (default: 1)")
    capacity.add_argument("--bucket-mb", type=float, default=None,
                          metavar="MB",
                          help="gradient-bucket size in MiB for the "
                               "overlap-aware allreduce model")
    capacity.add_argument("--overlap", default=True,
                          action=argparse.BooleanOptionalAction,
                          help="hide bucketed gradient allreduces "
                               "behind backward compute in service-"
                               "time predictions")
    capacity.add_argument("--epsilon-budget", type=float, default=None,
                          metavar="EPS",
                          help="per-tenant lifetime epsilon budget "
                               "(default: the admission controller's "
                               "3.0)")
    capacity.add_argument("--delta", type=float, default=1e-5,
                          help="per-tenant delta (default: 1e-5)")
    capacity.add_argument("--max-clusters", type=int, default=4096,
                          metavar="N",
                          help="search ceiling; an infeasible SLO "
                               "reports this fleet and exits 1 "
                               "(default: 4096)")
    capacity.add_argument("--cache-dir", default=None,
                          help="persist per-config step latencies as "
                               "JSON under this directory")
    trace = sub.add_parser(
        "trace",
        help="inspect a Chrome-trace JSON file (schema check + "
             "per-process summary)")
    trace.add_argument("file", help="trace file written by --trace")
    trace.add_argument("--json", action="store_true",
                       help="emit the summary as JSON instead of text")
    args = parser.parse_args(argv)
    handlers = {
        "models": _cmd_models,
        "experiments": _cmd_experiments,
        "run": _cmd_run,
        "simulate": _cmd_simulate,
        "design-space": _cmd_design_space,
        "scaling": _cmd_scaling,
        "serve": _cmd_serve,
        "capacity": _cmd_capacity,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
