"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
``pip install -e .`` / ``python setup.py develop`` work in offline
environments that lack the ``wheel`` package needed for PEP 660
editable installs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
